/**
 * @file
 * Tests for the SLO-driven autoscaler: config parsing/validation, the
 * vote/hysteresis/cooldown control loop against a live tier, capacity
 * bounds, and the brown-out admission gate.
 */

#include "microsim/autoscaler.hh"

#include <string>

#include <gtest/gtest.h>

#include "config/config.hh"
#include "microsim/tier.hh"
#include "util/logging.hh"

namespace accel::microsim {
namespace {

AcceleratorConfig
device()
{
    AcceleratorConfig dev;
    dev.speedupFactor = 4;
    dev.fixedLatencyCycles = 50;
    dev.latencyCyclesPerByte = 0.1;
    return dev;
}

TierConfig
tierOf(std::uint32_t replicas)
{
    TierConfig t;
    t.replicas = replicas;
    t.policy = DispatchPolicy::LeastOutstanding;
    return t;
}

/** Enabled 4-replica control loop: 1000-cycle windows, SLO p99 = 100. */
AutoscalerConfig
controlCfg()
{
    AutoscalerConfig cfg;
    cfg.enabled = true;
    cfg.intervalCycles = 1000;
    cfg.sloLatencyCycles = 100;
    cfg.minReplicas = 1;
    cfg.maxReplicas = 4;
    cfg.upWindows = 1;
    cfg.downWindows = 3;
    return cfg;
}

/** Tier + autoscaler on one queue, ready to drive window signals. */
struct Harness
{
    sim::EventQueue eq;
    AcceleratorTier tier;
    Autoscaler scaler;

    explicit Harness(const AutoscalerConfig &cfg,
                     std::uint32_t queueBound = 0,
                     std::uint32_t replicas = 4)
        : tier(eq, device(), tierOf(replicas)),
          scaler(eq, tier, cfg, queueBound)
    {
    }

    /** Feed @p n latency samples shortly before window @p w's tick. */
    void feedWindow(int w, double latency, int n = 50)
    {
        eq.schedule(w * 1000 + 500, [this, latency, n]() {
            for (int i = 0; i < n; ++i)
                scaler.observeLatency(latency);
        });
    }

    void shedInWindow(int w, int n = 1)
    {
        eq.schedule(w * 1000 + 500, [this, n]() {
            for (int i = 0; i < n; ++i)
                scaler.noteShed();
        });
    }

    void run(sim::Tick end)
    {
        scaler.start(end);
        eq.runUntil(end);
    }
};

TEST(AutoscalerConfig, ValidateNamesOffendingField)
{
    auto expectNamed = [](AutoscalerConfig cfg, const std::string &f) {
        try {
            cfg.validate();
            FAIL() << "expected FatalError naming " << f;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(f), std::string::npos)
                << "message does not name the field: " << e.what();
        }
    };
    AutoscalerConfig cfg = controlCfg();
    cfg.intervalCycles = 0;
    expectNamed(cfg, "intervalCycles");
    cfg = controlCfg();
    cfg.sloLatencyCycles = 0;
    expectNamed(cfg, "sloLatencyCycles");
    cfg = controlCfg();
    cfg.scaleDownPressure = cfg.scaleUpPressure;
    expectNamed(cfg, "scaleDownPressure");
    cfg = controlCfg();
    cfg.upWindows = 0;
    expectNamed(cfg, "upWindows");
    cfg = controlCfg();
    cfg.downWindows = 0;
    expectNamed(cfg, "downWindows");
    cfg = controlCfg();
    cfg.cooldownCycles = -1;
    expectNamed(cfg, "cooldownCycles");
    cfg = controlCfg();
    cfg.minReplicas = 0;
    expectNamed(cfg, "minReplicas");
    cfg = controlCfg();
    cfg.maxReplicas = 0;
    expectNamed(cfg, "maxReplicas");
    cfg = controlCfg();
    cfg.scaleStep = 0;
    expectNamed(cfg, "scaleStep");
    cfg = controlCfg();
    cfg.brownoutFloor = 0;
    expectNamed(cfg, "brownoutFloor");
    cfg = controlCfg();
    cfg.brownoutTighten = 1.0;
    expectNamed(cfg, "brownoutTighten");
    cfg = controlCfg();
    cfg.brownoutRelax = 1.0;
    expectNamed(cfg, "brownoutRelax");
    cfg = controlCfg();
    cfg.enabled = false;
    cfg.brownout = true;
    expectNamed(cfg, "brownout");
    cfg = controlCfg();
    cfg.scaleUpPressure = 0.0;
    expectNamed(cfg, "scaleUpPressure");
}

TEST(AutoscalerConfig, FromConfigDefaultsDisabled)
{
    Config cfg = Config::fromString("[svc]\ncores = 1\n");
    AutoscalerConfig a = autoscalerFromConfig(cfg, "svc");
    EXPECT_FALSE(a.enabled);
    EXPECT_FALSE(a.brownout);
}

TEST(AutoscalerConfig, FromConfigParsesAllKeys)
{
    Config cfg = Config::fromString(
        "[svc]\n"
        "scale_interval = 2e6\n"
        "scale_slo_p99 = 1.2e5\n"
        "scale_up_pressure = 0.85\n"
        "scale_down_pressure = 0.4\n"
        "scale_up_windows = 2\n"
        "scale_down_windows = 5\n"
        "scale_cooldown = 4e6\n"
        "scale_min_replicas = 2\n"
        "scale_max_replicas = 8\n"
        "scale_step = 2\n"
        "scale_brownout_floor = 6\n"
        "scale_brownout_tighten = 0.25\n"
        "scale_brownout_relax = 3\n");
    AutoscalerConfig a = autoscalerFromConfig(cfg, "svc");
    EXPECT_TRUE(a.enabled);
    EXPECT_DOUBLE_EQ(a.intervalCycles, 2e6);
    EXPECT_DOUBLE_EQ(a.sloLatencyCycles, 1.2e5);
    EXPECT_DOUBLE_EQ(a.scaleUpPressure, 0.85);
    EXPECT_DOUBLE_EQ(a.scaleDownPressure, 0.4);
    EXPECT_EQ(a.upWindows, 2u);
    EXPECT_EQ(a.downWindows, 5u);
    EXPECT_DOUBLE_EQ(a.cooldownCycles, 4e6);
    EXPECT_EQ(a.minReplicas, 2u);
    EXPECT_EQ(a.maxReplicas, 8u);
    EXPECT_EQ(a.scaleStep, 2u);
    EXPECT_TRUE(a.brownout);
    EXPECT_EQ(a.brownoutFloor, 6u);
    EXPECT_DOUBLE_EQ(a.brownoutTighten, 0.25);
    EXPECT_DOUBLE_EQ(a.brownoutRelax, 3.0);
}

TEST(AutoscalerConfig, FromConfigRequiresSloWithInterval)
{
    Config cfg = Config::fromString("[svc]\nscale_interval = 1e6\n");
    EXPECT_THROW(autoscalerFromConfig(cfg, "svc"), FatalError);
}

TEST(Autoscaler, CtorRejectsOverProvisionedMax)
{
    sim::EventQueue eq;
    AcceleratorTier tier(eq, device(), tierOf(2));
    AutoscalerConfig cfg = controlCfg(); // maxReplicas = 4 > 2
    EXPECT_THROW(Autoscaler(eq, tier, cfg, 0), FatalError);
}

TEST(Autoscaler, CtorRejectsBrownoutWithoutQueueBound)
{
    sim::EventQueue eq;
    AcceleratorTier tier(eq, device(), tierOf(4));
    AutoscalerConfig cfg = controlCfg();
    cfg.brownout = true;
    EXPECT_THROW(Autoscaler(eq, tier, cfg, 0), FatalError);
    cfg.brownoutFloor = 64;
    EXPECT_THROW(Autoscaler(eq, tier, cfg, 8), FatalError);
}

TEST(Autoscaler, StartAppliesMinReplicas)
{
    Harness h(controlCfg());
    EXPECT_EQ(h.tier.activeReplicaCount(), 4u);
    h.run(500); // no control tick yet
    EXPECT_EQ(h.scaler.activeTarget(), 1u);
    EXPECT_EQ(h.tier.activeReplicaCount(), 1u);
    // Idle victims drain instantly to standby.
    EXPECT_EQ(h.tier.provisionedReplicaCount(), 1u);
}

TEST(Autoscaler, ScalesUpUnderSustainedBreach)
{
    Harness h(controlCfg());
    for (int w = 0; w < 6; ++w)
        h.feedWindow(w, 150.0); // p99 well over the 100-cycle budget
    h.run(6000);
    EXPECT_EQ(h.scaler.activeTarget(), 4u);
    EXPECT_EQ(h.tier.activeReplicaCount(), 4u);
    EXPECT_EQ(h.scaler.stats().scaleUps, 3u);
    EXPECT_GE(h.scaler.stats().upBlocked, 1u); // wanted more, at cap
    EXPECT_GE(h.scaler.stats().breachWindows, 4u);
    EXPECT_EQ(h.scaler.stats().maxReplicasObserved, 4u);
    EXPECT_EQ(h.scaler.stats().finalReplicas, 4u);
    // The capacity bill reflects the ramp: strictly between always-1
    // and always-4 replicas over the run.
    double bill = h.tier.snapshot().provisionedReplicaCycles;
    EXPECT_GT(bill, 1.0 * 6000);
    EXPECT_LT(bill, 4.0 * 6000);
}

TEST(Autoscaler, ScaleDownNeedsConsecutiveQuietWindows)
{
    AutoscalerConfig cfg = controlCfg();
    cfg.minReplicas = 1;
    cfg.maxReplicas = 4;
    Harness h(cfg);
    // Windows 0-1: breach up to 3 replicas. Then quiet windows with a
    // breach interrupting the streak: votes must reset.
    h.feedWindow(0, 150.0);
    h.feedWindow(1, 150.0);
    h.feedWindow(2, 10.0);
    h.feedWindow(3, 10.0);
    h.feedWindow(4, 150.0); // streak broken (and an up-vote)
    h.feedWindow(5, 10.0);
    h.feedWindow(6, 10.0);
    h.feedWindow(7, 10.0); // third consecutive quiet window: act
    h.run(8000);
    EXPECT_EQ(h.scaler.stats().scaleUps, 3u);
    EXPECT_EQ(h.scaler.stats().scaleDowns, 1u);
    EXPECT_EQ(h.scaler.activeTarget(), 3u);
    EXPECT_LE(h.tier.activeReplicaCount(), 3u);
    EXPECT_EQ(h.scaler.stats().minReplicasObserved, 1u);
}

TEST(Autoscaler, EmptyWindowIsNoVote)
{
    // No samples and no sheds: neither direction moves (an idle
    // service must not be scaled on zero information).
    Harness h(controlCfg());
    h.run(5000);
    EXPECT_EQ(h.scaler.stats().controlWindows, 5u);
    EXPECT_EQ(h.scaler.stats().scaleUps, 0u);
    EXPECT_EQ(h.scaler.stats().scaleDowns, 0u);
    EXPECT_EQ(h.scaler.stats().downBlocked, 0u);
}

TEST(Autoscaler, ShedAloneVotesUp)
{
    Harness h(controlCfg());
    h.shedInWindow(0, 3);
    h.run(2000);
    EXPECT_EQ(h.scaler.stats().scaleUps, 1u);
    EXPECT_EQ(h.scaler.activeTarget(), 2u);
}

TEST(Autoscaler, DeepQueueVotesUpBeforeLatencyCatchesUp)
{
    Harness h(controlCfg(), /*queueBound=*/64);
    h.eq.schedule(500, [&h]() {
        h.scaler.noteQueueDepth(40); // past half the static bound
    });
    h.run(2000);
    EXPECT_EQ(h.scaler.stats().scaleUps, 1u);
}

TEST(Autoscaler, CooldownSpacesActions)
{
    AutoscalerConfig cfg = controlCfg();
    cfg.cooldownCycles = 2500;
    Harness h(cfg);
    for (int w = 0; w < 5; ++w)
        h.feedWindow(w, 150.0);
    h.run(5000);
    // Actions at ticks 1000 and 4000 only; 2000/3000 are cooling down.
    EXPECT_EQ(h.scaler.stats().scaleUps, 2u);
    EXPECT_EQ(h.scaler.activeTarget(), 3u);
}

TEST(Autoscaler, DownBlockedAtFloor)
{
    Harness h(controlCfg());
    for (int w = 0; w < 4; ++w)
        h.feedWindow(w, 10.0); // quiet from the start, already at min
    h.run(4000);
    EXPECT_EQ(h.scaler.stats().scaleDowns, 0u);
    EXPECT_GE(h.scaler.stats().downBlocked, 1u);
    EXPECT_EQ(h.scaler.activeTarget(), 1u);
}

TEST(Autoscaler, BrownoutTightensToFloorAndRelaxesBack)
{
    AutoscalerConfig cfg = controlCfg();
    cfg.brownout = true;
    cfg.brownoutFloor = 4;
    cfg.brownoutTighten = 0.5;
    cfg.brownoutRelax = 2.0;
    Harness h(cfg, /*queueBound=*/64);
    EXPECT_EQ(h.scaler.admissionLimit(), 64u);
    // Five shedding windows: 64 -> 32 -> 16 -> 8 -> 4, then pinned.
    for (int w = 0; w < 5; ++w)
        h.shedInWindow(w);
    // Then healthy windows: 4 -> 8 -> 16 -> 32 -> 64, then capped.
    for (int w = 5; w < 11; ++w)
        h.feedWindow(w, 10.0);
    h.run(11000);
    EXPECT_EQ(h.scaler.admissionLimit(), 64u);
    EXPECT_EQ(h.scaler.stats().admissionTightenings, 4u);
    EXPECT_EQ(h.scaler.stats().admissionRelaxations, 4u);
}

TEST(Autoscaler, BrownoutFloorHoldsUnderSustainedPressure)
{
    AutoscalerConfig cfg = controlCfg();
    cfg.brownout = true;
    cfg.brownoutFloor = 4;
    Harness h(cfg, /*queueBound=*/8);
    for (int w = 0; w < 6; ++w)
        h.shedInWindow(w, 10);
    h.run(6000);
    EXPECT_EQ(h.scaler.admissionLimit(), 4u);
}

TEST(Autoscaler, ResetStatsPreservesControlState)
{
    Harness h(controlCfg());
    h.feedWindow(0, 150.0);
    h.feedWindow(1, 150.0); // grown to 3 replicas by tick 2000
    h.eq.schedule(3500, [&h]() { h.scaler.resetStats(); });
    h.eq.schedule(3600, [&h]() {
        for (int i = 0; i < 50; ++i)
            h.scaler.observeLatency(150.0);
    });
    h.run(5000);
    // Counters restarted at the reset (end of warmup), but the replica
    // target carried across it: 2 grows before, 1 after.
    EXPECT_EQ(h.scaler.activeTarget(), 4u);
    EXPECT_EQ(h.scaler.stats().scaleUps, 1u);
    EXPECT_EQ(h.scaler.stats().minReplicasObserved, 3u);
    EXPECT_EQ(h.scaler.stats().maxReplicasObserved, 4u);
}

TEST(Autoscaler, StatsReportEveryCounter)
{
    Harness h(controlCfg());
    h.feedWindow(0, 150.0);
    h.run(2000);
    std::string json = h.scaler.stats().summaryJson();
    for (const char *key :
         {"control_windows", "scale_ups", "scale_downs", "up_blocked",
          "down_blocked", "breach_windows", "admission_tightenings",
          "admission_relaxations", "window_p99_cycles",
          "merged_p99_cycles", "final_replicas",
          "min_replicas_observed", "max_replicas_observed"}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "summaryJson missing " << key;
    }
}

TEST(Autoscaler, MergedP99SeesBurstAcrossWindows)
{
    // One bad window among many quiet ones: the merged p99 keeps the
    // burst visible while most window p99s are small.
    Harness h(controlCfg());
    for (int w = 0; w < 9; ++w)
        h.feedWindow(w, 10.0, 11);
    h.feedWindow(9, 190.0, 100);
    h.run(10000);
    EXPECT_GT(h.scaler.stats().mergedP99Cycles, 150.0);
    EXPECT_LT(h.scaler.stats().windowP99Cycles.min(), 20.0);
}

} // namespace
} // namespace accel::microsim

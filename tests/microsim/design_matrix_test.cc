/**
 * @file
 * Parameterized design-matrix tests: for every threading design, the
 * closed-loop simulator's throughput must equal the hand-computed
 * per-request core-cycle cost, including multi-kernel requests and
 * super-linear kernels.
 */

#include <gtest/gtest.h>

#include "microsim/service_sim.hh"
#include "microsim/service_spec.hh"
#include "util/logging.hh"

namespace accel::microsim {
namespace {

/** Spec-path construction for the common (cfg, dev, work, seed) shape. */
ServiceSpec
simSpec(const ServiceConfig &cfg, const AcceleratorConfig &dev,
        const WorkloadSpec &work, std::uint64_t seed)
{
    return ServiceSpec()
        .service(cfg)
        .accelerator(dev)
        .workload(work)
        .seed(seed);
}

using model::Strategy;
using model::ThreadingDesign;

constexpr double kNonKernel = 6000;
constexpr double kKernel = 1500; // 750 B * 2 cycles/B
constexpr double kSetup = 40;
constexpr double kSwitch = 250;
constexpr double kTransfer = 120;

WorkloadSpec
workload(std::uint32_t kernels)
{
    WorkloadSpec w;
    w.nonKernelCyclesMean = kNonKernel;
    w.nonKernelCv = 0.0;
    w.kernelsPerRequest = kernels;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{750, 751, 1.0}});
    w.cyclesPerByte = 2.0;
    return w;
}

ServiceConfig
config(ThreadingDesign design)
{
    ServiceConfig cfg;
    cfg.cores = 1;
    cfg.threads = design == ThreadingDesign::SyncOS ? 5 : 1;
    cfg.design = design;
    cfg.clockGHz = 1.0;
    cfg.offloadSetupCycles = kSetup;
    cfg.contextSwitchCycles = kSwitch;
    cfg.driverWaitsForAck = true;
    return cfg;
}

AcceleratorConfig
device()
{
    AcceleratorConfig acc;
    acc.speedupFactor = 6; // service = 250 cycles + eps per kernel
    acc.fixedLatencyCycles = kTransfer;
    acc.channels = 8;
    return acc;
}

/** Hand-computed core cycles per request for a design. */
double
expectedPerRequestCycles(ThreadingDesign design, std::uint32_t kernels)
{
    double service = kKernel / 6.0;
    double per_offload = 0;
    switch (design) {
      case ThreadingDesign::Sync:
        // o0 + held (transfer + service).
        per_offload = kSetup + kTransfer + service;
        break;
      case ThreadingDesign::SyncOS:
        // o0 + ack-hold transfer + two switches.
        per_offload = kSetup + kTransfer + 2 * kSwitch;
        break;
      case ThreadingDesign::AsyncSameThread:
      case ThreadingDesign::AsyncNoResponse:
        per_offload = kSetup + kTransfer;
        break;
      case ThreadingDesign::AsyncDistinctThread:
        per_offload = kSetup + kTransfer + kSwitch;
        break;
    }
    return kNonKernel + kernels * per_offload;
}

class DesignMatrixTest
    : public testing::TestWithParam<std::tuple<ThreadingDesign, int>>
{
};

TEST_P(DesignMatrixTest, ThroughputMatchesHandArithmetic)
{
    auto [design, kernels] = GetParam();
    ServiceSim sim(simSpec(config(design), device(),
                   workload(static_cast<std::uint32_t>(kernels)), 3));
    ServiceMetrics m = sim.run(0.1, 0.02);
    double expected = 1e9 /
        expectedPerRequestCycles(design,
                                 static_cast<std::uint32_t>(kernels));
    EXPECT_NEAR(m.qps(), expected, expected * 0.03)
        << toString(design) << " kernels=" << kernels;
    // Up to a few requests straddle the window boundary: offloads issued
    // but completion unobserved.
    EXPECT_NEAR(static_cast<double>(m.offloadsIssued),
                static_cast<double>(m.requestsCompleted) * kernels,
                4.0 * kernels);
}

std::string
designMatrixName(
    const testing::TestParamInfo<std::tuple<ThreadingDesign, int>> &info)
{
    std::string name = toString(std::get<0>(info.param));
    std::string out;
    for (char c : name)
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += c;
    return out + "K" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignMatrixTest,
    testing::Combine(
        testing::Values(ThreadingDesign::Sync, ThreadingDesign::SyncOS,
                        ThreadingDesign::AsyncSameThread,
                        ThreadingDesign::AsyncDistinctThread,
                        ThreadingDesign::AsyncNoResponse),
        testing::Values(1, 3)),
    designMatrixName);

TEST(DesignMatrix, SuperLinearKernelsCostQuadratically)
{
    WorkloadSpec w = workload(1);
    w.beta = 2.0;
    w.cyclesPerByte = 0.01; // 0.01 * 750^2 = 5625 cycles per kernel
    ServiceConfig cfg = config(ThreadingDesign::Sync);
    cfg.accelerated = false;
    ServiceSim sim(simSpec(cfg, device(), w, 4));
    ServiceMetrics m = sim.run(0.05, 0.01);
    double expected = 1e9 / (kNonKernel + 0.01 * 750.0 * 750.0);
    EXPECT_NEAR(m.qps(), expected, expected * 0.03);
}

TEST(DesignMatrix, NoAckOverlapsTransfer)
{
    // driverWaitsForAck = false: the transfer leaves the host path, so
    // async throughput rises by exactly the transfer hold.
    ServiceConfig with_ack = config(ThreadingDesign::AsyncSameThread);
    ServiceConfig without_ack = with_ack;
    without_ack.driverWaitsForAck = false;
    double q_ack =
        ServiceSim(simSpec(with_ack, device(), workload(1), 5)).run(0.05).qps();
    double q_free = ServiceSim(simSpec(without_ack, device(), workload(1), 5))
                        .run(0.05)
                        .qps();
    double expected_ratio = (kNonKernel + kSetup + kTransfer) /
                            (kNonKernel + kSetup);
    EXPECT_NEAR(q_free / q_ack, expected_ratio, 0.02);
}

TEST(DesignMatrix, StolenPickupCyclesAccounted)
{
    // Response pickup work must appear in throughput: adding
    // responsePickupCycles = 500 per offload costs exactly that much
    // core time per request.
    ServiceConfig cfg = config(ThreadingDesign::AsyncSameThread);
    ServiceConfig with_pickup = cfg;
    with_pickup.responsePickupCycles = 500;
    double base =
        ServiceSim(simSpec(cfg, device(), workload(1), 6)).run(0.05).qps();
    double picked = ServiceSim(simSpec(with_pickup, device(), workload(1), 6))
                        .run(0.05)
                        .qps();
    double expected_ratio =
        (kNonKernel + kSetup + kTransfer + 500) /
        (kNonKernel + kSetup + kTransfer);
    EXPECT_NEAR(base / picked, expected_ratio, 0.02);
}

} // namespace
} // namespace accel::microsim

/**
 * @file
 * Graph-level failure containment: per-edge timeouts/retries, retry
 * token budgets, deadline propagation with budget splits, per-edge
 * circuit breakers, edge fault injection, and the honest-attribution
 * counters that account for every saved or shed unit of work.
 */

#include <gtest/gtest.h>

#include "config/config.hh"
#include "faults/edge_fault_plan.hh"
#include "microsim/service_graph.hh"
#include "microsim/service_spec.hh"
#include "util/logging.hh"

namespace accel::microsim {
namespace {

/** Host-only Sync tier with deterministic service time (cv = 0). */
ServiceSpec
tier(const std::string &name, double arrivalsPerSec, double meanCycles,
     std::uint64_t seed)
{
    ServiceConfig cfg;
    cfg.cores = 2;
    cfg.threads = 2;
    cfg.design = model::ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    cfg.accelerated = false;
    cfg.openArrivalsPerSec = arrivalsPerSec;
    WorkloadSpec w;
    w.nonKernelCyclesMean = meanCycles;
    w.nonKernelCv = 0.0;
    w.kernelsPerRequest = 0;
    return ServiceSpec(name)
        .service(cfg)
        .accelerator(AcceleratorConfig{})
        .workload(w)
        .seed(seed);
}

/** A blackhole plan swallowing every call from tick 0 onward. */
std::shared_ptr<const faults::EdgeFaultPlan>
foreverBlackhole()
{
    auto plan = std::make_shared<faults::EdgeFaultPlan>();
    plan->blackholes = {{0, 1'000'000'000'000ULL}};
    return plan;
}

TEST(EdgeConfigValidate, ResilienceKnobsNeedATimeout)
{
    EdgeConfig e;
    e.caller = "a";
    e.callee = "b";
    e.maxAttempts = 3; // retries without a timeout can never fire
    EXPECT_THROW(e.validate(), FatalError);

    e = EdgeConfig{};
    e.caller = "a";
    e.callee = "b";
    e.breaker.enabled = true; // timeouts are the breaker's signal
    EXPECT_THROW(e.validate(), FatalError);

    e = EdgeConfig{};
    e.caller = "a";
    e.callee = "b";
    e.rpcTimeoutCycles = 100;
    e.maxAttempts = 3;
    e.breaker.enabled = true;
    EXPECT_NO_THROW(e.validate());
}

TEST(EdgeConfigValidate, AsyncEdgesTakeNoResilienceLayer)
{
    // Fire-and-forget calls have no response to time out on; the
    // config is rejected instead of silently ignoring the knobs.
    EdgeConfig e;
    e.caller = "a";
    e.callee = "b";
    e.style = CallStyle::Async;
    e.rpcTimeoutCycles = 100;
    EXPECT_THROW(e.validate(), FatalError);

    // But a lossy fault plan is fine: async losses need no timeout.
    e = EdgeConfig{};
    e.caller = "a";
    e.callee = "b";
    e.style = CallStyle::Async;
    e.faultPlan = foreverBlackhole();
    EXPECT_NO_THROW(e.validate());

    // A lossy plan on a sync edge without a timeout would hang the
    // caller's subtree forever: rejected.
    e.style = CallStyle::Sync;
    EXPECT_THROW(e.validate(), FatalError);
}

TEST(EdgeConfigValidate, BudgetWeightDomain)
{
    EdgeConfig e;
    e.caller = "a";
    e.callee = "b";
    e.budgetWeight = 0.0;
    EXPECT_THROW(e.validate(), FatalError);
    e.budgetWeight = 1.5;
    EXPECT_THROW(e.validate(), FatalError);
}

TEST(BudgetSplitNames, RoundTrip)
{
    EXPECT_EQ(budgetSplitFromString("even"), BudgetSplit::Even);
    EXPECT_EQ(budgetSplitFromString("weighted"), BudgetSplit::Weighted);
    EXPECT_EQ(budgetSplitFromString("reserve_for_retry"),
              BudgetSplit::ReserveForRetry);
    EXPECT_STREQ(toString(BudgetSplit::ReserveForRetry),
                 "reserve_for_retry");
    EXPECT_THROW(budgetSplitFromString("fair"), FatalError);
}

TEST(GraphResilience, TimeoutsFailCallsAndZombiesAreCounted)
{
    // Callee RTT (10k out + 50k work + 10k return) far exceeds the
    // 20k timeout: every attempt is abandoned, yet the callee still
    // executes the delivered zombie — counted as ignored completions,
    // the wasted-work signal the containment layer minimizes.
    ServiceGraph g(7);
    g.addService(tier("web", /*arrivalsPerSec=*/1000, 10e3, 7));
    g.addService(tier("leaf", 0, 50e3, 8));
    EdgeConfig e;
    e.caller = "web";
    e.callee = "leaf";
    e.latencyCycles = 10e3;
    e.rpcTimeoutCycles = 20e3;
    g.addEdge(e);
    GraphMetrics m = g.run(0.02, 0.0);

    const EdgeStats &es = m.edges.at(0);
    EXPECT_GT(es.callsIssued, 0u);
    EXPECT_GT(es.attemptsTimedOut, 0u);
    EXPECT_EQ(es.callsCompleted, 0u);
    // <= rather than ==: chains still in flight when the run ends are
    // issued but never settle.
    EXPECT_GT(es.callsFailed, 0u);
    EXPECT_LE(es.callsFailed, es.callsIssued);
    EXPECT_GT(es.callsCompletedIgnored, 0u);
    // The zombie work really ran at the callee.
    EXPECT_GT(m.node("leaf").service.requestsCompleted, 0u);
    // Exhausted retry ladders fail the root (not degraded).
    EXPECT_EQ(m.rootsFailed, m.rootsCompleted);
    EXPECT_EQ(m.rootsDegraded, 0u);
}

TEST(GraphResilience, RetryBudgetBoundsTheLadder)
{
    // Every attempt is dropped in flight; the bucket holds 2 tokens
    // and nothing ever succeeds to refill it, so across the whole run
    // exactly 2 retries are issued and the rest are suppressed.
    ServiceGraph g(11);
    g.addService(tier("web", /*arrivalsPerSec=*/1000, 10e3, 11));
    g.addService(tier("leaf", 0, 5e3, 12));
    EdgeConfig e;
    e.caller = "web";
    e.callee = "leaf";
    e.latencyCycles = 1e3;
    e.rpcTimeoutCycles = 20e3;
    e.maxAttempts = 3;
    e.retryBudget.cap = 2;
    e.retryBudget.ratio = 0.1;
    auto plan = std::make_shared<faults::EdgeFaultPlan>();
    plan->dropProbability = 1.0;
    e.faultPlan = std::move(plan);
    g.addEdge(e);
    GraphMetrics m = g.run(0.02, 0.0);

    const EdgeStats &es = m.edges.at(0);
    EXPECT_GT(es.callsIssued, 2u);
    EXPECT_EQ(es.callsDropped, es.attemptsIssued);
    EXPECT_EQ(es.attemptsRetried, 2u);
    EXPECT_GT(es.retriesSuppressed, 0u);
    EXPECT_GT(es.callsFailed, 0u);
    EXPECT_LE(es.callsFailed, es.callsIssued);
    // Without the budget every call would issue maxAttempts attempts.
    EXPECT_EQ(es.attemptsIssued, es.callsIssued + 2);
}

TEST(GraphResilience, BreakerOpensShortCircuitsThenRecovers)
{
    // The callee is blackholed for the first 2M ticks. Timeouts trip
    // the breaker almost immediately; while open, callers settle
    // degraded without issuing attempts. Once the window clears, a
    // probe closes the breaker and calls complete again.
    ServiceGraph g(13);
    g.addService(tier("web", /*arrivalsPerSec=*/5000, 10e3, 13));
    g.addService(tier("leaf", 0, 5e3, 14));
    EdgeConfig e;
    e.caller = "web";
    e.callee = "leaf";
    e.latencyCycles = 1e3;
    e.rpcTimeoutCycles = 20e3;
    e.breaker.enabled = true;
    e.breaker.openThreshold = 0.5;
    e.breaker.window = 4;
    e.breaker.minSamples = 2;
    // Probe interval well above the 200k-tick arrival spacing, so
    // open-state calls mostly short-circuit rather than all probing.
    e.breaker.probeAfterCycles = 1e6;
    auto plan = std::make_shared<faults::EdgeFaultPlan>();
    plan->blackholes = {{0, 2'000'000}};
    e.faultPlan = std::move(plan);
    g.addEdge(e);

    LogLevel prev = setLogLevel(LogLevel::Silent); // breaker-open warns
    GraphMetrics m = g.run(0.02, 0.0);
    setLogLevel(prev);

    const EdgeStats &es = m.edges.at(0);
    EXPECT_GE(es.breakerOpens, 1u);
    EXPECT_GE(es.breakerProbes, 1u);
    EXPECT_GE(es.breakerCloses, 1u);
    EXPECT_GT(es.callsShortCircuited, 0u);
    EXPECT_GT(es.callsBlackholed, 0u);
    // Post-recovery traffic completes.
    EXPECT_GT(es.callsCompleted, 0u);
    // Short-circuited calls degrade the root instead of failing it.
    EXPECT_GT(m.rootsDegraded, 0u);
    EXPECT_GT(m.rootGoodputQps(), 0.0);
}

TEST(GraphResilience, DeadlineExhaustionPrunesTheSubtree)
{
    // The 5k root budget is spent before web's own 10k of work ends,
    // so fan-out is skipped entirely: no calls on the edge, the root
    // settles degraded, and the prune is attributed at the web node.
    ServiceGraph g(17);
    g.addService(tier("web", /*arrivalsPerSec=*/1000, 10e3, 17));
    g.addService(tier("leaf", 0, 5e3, 18));
    EdgeConfig e;
    e.caller = "web";
    e.callee = "leaf";
    e.latencyCycles = 1e3;
    g.addEdge(e);
    g.rootDeadline(5e3);
    GraphMetrics m = g.run(0.02, 0.0);

    EXPECT_EQ(m.edges.at(0).callsIssued, 0u);
    EXPECT_GT(m.node("web").subtreesPrunedBudget, 0u);
    EXPECT_EQ(m.node("leaf").service.requestsArrived, 0u);
    EXPECT_EQ(m.rootsDegraded, m.rootsCompleted);
    EXPECT_EQ(m.rootsFailed, 0u);
}

TEST(GraphResilience, OverBudgetDeliveryIsCancelledAtTheDoor)
{
    // The budget survives web's work but dies on the 100k-cycle hop:
    // the delivery is cancelled before injection, so the callee never
    // pays for work whose deadline has already passed.
    ServiceGraph g(19);
    g.addService(tier("web", /*arrivalsPerSec=*/1000, 10e3, 19));
    g.addService(tier("leaf", 0, 5e3, 20));
    EdgeConfig e;
    e.caller = "web";
    e.callee = "leaf";
    e.latencyCycles = 100e3;
    g.addEdge(e);
    g.rootDeadline(50e3);
    GraphMetrics m = g.run(0.02, 0.0);

    const EdgeStats &es = m.edges.at(0);
    EXPECT_GT(es.callsIssued, 0u);
    EXPECT_GT(es.callsCancelledBudget, 0u);
    EXPECT_EQ(m.node("leaf").service.requestsArrived, 0u);
    EXPECT_EQ(m.rootsDegraded, m.rootsCompleted);
}

TEST(GraphResilience, AsyncFaultPlanLosesCallsWithoutFailingRoots)
{
    // Fire-and-forget losses: the callee starves but the caller's
    // subtree is untouched — no failures, no degradation.
    ServiceGraph g(23);
    g.addService(tier("web", /*arrivalsPerSec=*/1000, 10e3, 23));
    g.addService(tier("leaf", 0, 5e3, 24));
    EdgeConfig e;
    e.caller = "web";
    e.callee = "leaf";
    e.style = CallStyle::Async;
    e.latencyCycles = 1e3;
    auto plan = std::make_shared<faults::EdgeFaultPlan>();
    plan->dropProbability = 1.0;
    e.faultPlan = std::move(plan);
    g.addEdge(e);
    GraphMetrics m = g.run(0.02, 0.0);

    const EdgeStats &es = m.edges.at(0);
    EXPECT_GT(es.callsDropped, 0u);
    EXPECT_EQ(es.callsDropped, es.callsIssued);
    EXPECT_EQ(m.node("leaf").service.requestsArrived, 0u);
    EXPECT_EQ(m.rootsFailed, 0u);
    EXPECT_EQ(m.rootsDegraded, 0u);
    EXPECT_GT(m.rootsCompleted, 0u);
}

TEST(GraphResilience, SummaryJsonCoversTheResilienceCounters)
{
    ServiceGraph g(29);
    g.addService(tier("web", /*arrivalsPerSec=*/1000, 10e3, 29));
    g.addService(tier("leaf", 0, 5e3, 30));
    EdgeConfig e;
    e.caller = "web";
    e.callee = "leaf";
    e.latencyCycles = 1e3;
    e.rpcTimeoutCycles = 20e3;
    e.maxAttempts = 2;
    g.addEdge(e);
    g.rootDeadline(1e6);
    GraphMetrics m = g.run(0.01, 0.0);

    std::string json = m.summaryJson();
    for (const char *key :
         {"attempts_issued", "calls_dropped", "calls_blackholed",
          "attempts_timed_out", "attempts_retried", "retries_suppressed",
          "calls_deadline_exceeded", "calls_cancelled_budget",
          "calls_short_circuited", "calls_failed",
          "calls_completed_ignored", "breaker_opens", "breaker_probes",
          "breaker_closes", "degraded_propagated", "subtrees_degraded",
          "subtrees_pruned_budget", "roots_degraded"}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "summaryJson missing counter: " << key;
    }
}

TEST(GraphResilience, SameSeedReplaysBitIdenticallyUnderFaults)
{
    auto build = [] {
        ServiceGraph g(31);
        g.addService(tier("web", /*arrivalsPerSec=*/2000, 10e3, 31));
        g.addService(tier("leaf", 0, 20e3, 32));
        EdgeConfig e;
        e.caller = "web";
        e.callee = "leaf";
        e.latencyCycles = 5e3;
        e.rpcTimeoutCycles = 50e3;
        e.maxAttempts = 3;
        e.retryBudget.cap = 5;
        e.budgetSplit = BudgetSplit::ReserveForRetry;
        auto plan = std::make_shared<faults::EdgeFaultPlan>();
        plan->seed = 33;
        plan->dropProbability = 0.3;
        plan->spikeProbability = 0.2;
        plan->spikeLatencyCycles = 100e3;
        e.faultPlan = std::move(plan);
        g.addEdge(e);
        g.rootDeadline(500e3);
        return g;
    };
    GraphMetrics a = build().run(0.02, 0.005);
    GraphMetrics b = build().run(0.02, 0.005);
    EXPECT_EQ(a.summaryJson(), b.summaryJson());
}

TEST(GraphConfig, RoundTripsAgainstHandBuiltGraph)
{
    Config cfg = Config::fromString(
        "[graph]\n"
        "services = web, leaf\n"
        "seed = 41\n"
        "root_deadline_cycles = 500e3\n"
        "edge_0_caller = web\n"
        "edge_0_callee = leaf\n"
        "edge_0_latency = 5e3\n"
        "edge_0_timeout = 50e3\n"
        "edge_0_max_attempts = 3\n"
        "edge_0_retry_budget_cap = 5\n"
        "edge_0_retry_budget_ratio = 0.1\n"
        "edge_0_budget_split = reserve_for_retry\n"
        "edge_0_fault_seed = 33\n"
        "edge_0_fault_drop_p = 0.3\n"
        "edge_0_fault_spike_p = 0.2\n"
        "edge_0_fault_spike_cycles = 100e3\n"
        "edge_0_fault_spike_windows = 0:10000000\n"
        "[web]\n"
        "cores = 2\n"
        "threads = 2\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "accelerated = no\n"
        "open_arrivals_per_sec = 2000\n"
        "work_non_kernel_cycles = 10e3\n"
        "work_kernels_per_request = 0\n"
        "seed = 41\n"
        "[leaf]\n"
        "cores = 2\n"
        "threads = 2\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "accelerated = no\n"
        "work_non_kernel_cycles = 20e3\n"
        "work_kernels_per_request = 0\n"
        "seed = 42\n");
    ServiceGraph parsed = serviceGraphFromConfig(cfg);
    EXPECT_TRUE(parsed.errors().empty());

    ServiceGraph built(41);
    built.addService(tier("web", 2000, 10e3, 41));
    built.addService(tier("leaf", 0, 20e3, 42));
    EdgeConfig e;
    e.caller = "web";
    e.callee = "leaf";
    e.latencyCycles = 5e3;
    e.rpcTimeoutCycles = 50e3;
    e.maxAttempts = 3;
    e.retryBudget.cap = 5;
    e.retryBudget.ratio = 0.1;
    e.budgetSplit = BudgetSplit::ReserveForRetry;
    auto plan = std::make_shared<faults::EdgeFaultPlan>();
    plan->seed = 33;
    plan->dropProbability = 0.3;
    plan->spikeProbability = 0.2;
    plan->spikeLatencyCycles = 100e3;
    plan->spikeWindows = {{0, 10'000'000}};
    e.faultPlan = std::move(plan);
    built.addEdge(e);
    built.rootDeadline(500e3);

    GraphMetrics from_config = parsed.run(0.02, 0.005);
    GraphMetrics from_builder = built.run(0.02, 0.005);
    EXPECT_EQ(from_config.summaryJson(), from_builder.summaryJson());
}

TEST(GraphConfig, RejectsUnknownKeysByName)
{
    Config cfg = Config::fromString(
        "[graph]\n"
        "services = web\n"
        "edge_0_tmeout = 100\n" // typo of edge_0_timeout
        "[web]\n"
        "cores = 1\n"
        "threads = 1\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "work_non_kernel_cycles = 1000\n");
    try {
        serviceGraphFromConfig(cfg);
        FAIL() << "typoed edge key accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("edge_0_tmeout"),
                  std::string::npos);
    }
}

TEST(GraphConfig, RejectsNonContiguousEdgeNumbering)
{
    // edge_1_* without edge_0_*: the discovery loop stops at the gap
    // and the leftover keys are rejected rather than silently dropped.
    Config cfg = Config::fromString(
        "[graph]\n"
        "services = web\n"
        "edge_1_caller = web\n"
        "edge_1_callee = web\n"
        "[web]\n"
        "cores = 1\n"
        "threads = 1\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "work_non_kernel_cycles = 1000\n");
    try {
        serviceGraphFromConfig(cfg);
        FAIL() << "gap in edge numbering accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("edge_1_caller"),
                  std::string::npos);
    }
}

TEST(GraphConfig, RejectsMalformedWindowList)
{
    Config cfg = Config::fromString(
        "[graph]\n"
        "services = web, leaf\n"
        "edge_0_caller = web\n"
        "edge_0_callee = leaf\n"
        "edge_0_fault_blackholes = 10:xyz\n"
        "[web]\n"
        "cores = 1\n"
        "threads = 1\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "work_non_kernel_cycles = 1000\n"
        "[leaf]\n"
        "cores = 1\n"
        "threads = 1\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "work_non_kernel_cycles = 1000\n");
    try {
        serviceGraphFromConfig(cfg);
        FAIL() << "malformed window list accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("edge_0_fault_blackholes"),
                  std::string::npos);
    }
}

} // namespace
} // namespace accel::microsim

/** @file Tests for the open-loop (Poisson arrivals) simulator mode. */

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "microsim/service_sim.hh"
#include "microsim/service_spec.hh"
#include "util/logging.hh"

namespace accel::microsim {
namespace {

/** Spec-path construction for the common (cfg, dev, work, seed) shape. */
ServiceSpec
simSpec(const ServiceConfig &cfg, const AcceleratorConfig &dev,
        const WorkloadSpec &work, std::uint64_t seed)
{
    return ServiceSpec()
        .service(cfg)
        .accelerator(dev)
        .workload(work)
        .seed(seed);
}

using model::ThreadingDesign;

WorkloadSpec
workload()
{
    WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.0;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{500, 501, 1.0}});
    w.cyclesPerByte = 2.0; // request ~5000 cycles total
    return w;
}

ServiceConfig
config(double arrivalsPerSec)
{
    ServiceConfig cfg;
    cfg.cores = 1;
    cfg.threads = 1;
    cfg.design = ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    cfg.accelerated = false;
    cfg.openArrivalsPerSec = arrivalsPerSec;
    return cfg;
}

TEST(OpenLoop, ThroughputEqualsOfferedLoadBelowSaturation)
{
    // Capacity ~200k req/s; offer 50k.
    ServiceSim sim(simSpec(config(50000), AcceleratorConfig{}, workload(), 9));
    ServiceMetrics m = sim.run(0.2, 0.05);
    EXPECT_NEAR(m.qps(), 50000, 2500);
    EXPECT_NEAR(static_cast<double>(m.requestsArrived),
                static_cast<double>(m.requestsCompleted),
                0.05 * m.requestsArrived);
}

TEST(OpenLoop, SaturationCapsThroughputAtCapacity)
{
    // Offer 2x capacity: completions cap near 200k/s.
    ServiceSim sim(simSpec(config(400000), AcceleratorConfig{}, workload(), 9));
    ServiceMetrics m = sim.run(0.1, 0.02);
    EXPECT_NEAR(m.qps(), 200000, 8000);
    EXPECT_GT(m.requestsArrived, m.requestsCompleted);
}

TEST(OpenLoop, LatencyIncludesQueueingAndGrowsWithLoad)
{
    auto latency = [](double load) {
        ServiceSim sim(simSpec(config(load), AcceleratorConfig{}, workload(),
                       11));
        return sim.run(0.2, 0.05).meanLatencyCycles();
    };
    double low = latency(20000);   // rho = 0.1
    double mid = latency(140000);  // rho = 0.7
    double high = latency(190000); // rho = 0.95
    // M/D/1-ish: service ~5000 cycles; queueing inflates with rho.
    EXPECT_NEAR(low, 5000, 600);
    EXPECT_GT(mid, low * 1.5);
    EXPECT_GT(high, mid * 2.0);
}

TEST(OpenLoop, TailQuantilesOrdered)
{
    ServiceSim sim(simSpec(config(150000), AcceleratorConfig{}, workload(), 12));
    ServiceMetrics m = sim.run(0.2, 0.05);
    double p50 = m.latencySample.p50();
    double p95 = m.latencySample.p95();
    double p99 = m.latencySample.p99();
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, 5000); // at least the service time
    EXPECT_GT(p99, p50);  // queueing creates a real tail
}

TEST(OpenLoop, AcceleratedServiceHoldsSloLonger)
{
    // The model's purpose: acceleration raises the load at which the
    // latency SLO still holds. At 85% of baseline capacity, the
    // accelerated instance (Sync offload, A = 5) runs at lower
    // utilization and hence far lower p99.
    const double load = 170000;
    ServiceConfig base = config(load);
    ServiceConfig accel_cfg = base;
    accel_cfg.accelerated = true;
    AcceleratorConfig dev;
    dev.speedupFactor = 5;
    dev.fixedLatencyCycles = 50;

    ServiceMetrics slow =
        ServiceSim(simSpec(base, dev, workload(), 13)).run(0.2, 0.05);
    ServiceMetrics fast =
        ServiceSim(simSpec(accel_cfg, dev, workload(), 13)).run(0.2, 0.05);
    EXPECT_LT(fast.latencySample.p99(),
              slow.latencySample.p99() * 0.6);
}

TEST(OpenLoop, MultiThreadDrainsQueueFaster)
{
    ServiceConfig one = config(150000);
    ServiceConfig four = one;
    four.cores = 4;
    four.threads = 4;
    ServiceMetrics m1 =
        ServiceSim(simSpec(one, AcceleratorConfig{}, workload(), 14))
            .run(0.1, 0.02);
    ServiceMetrics m4 =
        ServiceSim(simSpec(four, AcceleratorConfig{}, workload(), 14))
            .run(0.1, 0.02);
    // Same offered load, 4x capacity: near-zero queueing.
    EXPECT_LT(m4.meanLatencyCycles(), m1.meanLatencyCycles());
    EXPECT_NEAR(m4.meanLatencyCycles(), 5000, 600);
}

TEST(OpenLoop, ClosedLoopUnaffectedByDefault)
{
    ServiceConfig cfg = config(0);
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 15));
    ServiceMetrics m = sim.run(0.05, 0.01);
    EXPECT_EQ(m.requestsArrived, 0u);
    EXPECT_NEAR(m.qps(), 200000, 4000);
}

TEST(OpenLoop, DeterministicArrivals)
{
    auto run = [] {
        ServiceSim sim(simSpec(config(120000), AcceleratorConfig{}, workload(),
                       99));
        ServiceMetrics m = sim.run(0.05, 0.01);
        return std::make_pair(m.requestsArrived, m.requestsCompleted);
    };
    EXPECT_EQ(run(), run());
}

TEST(OpenLoop, SheddingBoundsQueueUnderSaturation)
{
    // Offer 2x capacity with a bounded admission queue: the backlog
    // must stay capped, the overflow must be counted as shed, and
    // completions still run at capacity.
    ServiceConfig cfg = config(400000);
    cfg.maxArrivalQueue = 16;
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 9));
    ServiceMetrics m = sim.run(0.1, 0.02);
    EXPECT_GT(m.requestsShed, 0u);
    EXPECT_LE(m.maxArrivalQueueDepth, 16u);
    EXPECT_NEAR(m.qps(), 200000, 8000);
    // Everything that was not shed either completed or sits in the
    // bounded backlog; the warmup boundary can shift the balance by at
    // most one queue's worth in either direction.
    EXPECT_NEAR(static_cast<double>(m.requestsArrived),
                static_cast<double>(m.requestsCompleted +
                                    m.requestsShed),
                16.0);
    // Shed arrivals are not failures; goodput tracks completions.
    EXPECT_DOUBLE_EQ(m.goodputQps(), m.qps());
}

TEST(OpenLoop, NoSheddingBelowSaturation)
{
    ServiceConfig cfg = config(50000);
    cfg.maxArrivalQueue = 64;
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 9));
    ServiceMetrics m = sim.run(0.2, 0.05);
    EXPECT_EQ(m.requestsShed, 0u);
    EXPECT_NEAR(m.qps(), 50000, 2500);
}

TEST(OpenLoop, SheddingIsDeterministic)
{
    auto run = [] {
        ServiceConfig cfg = config(400000);
        cfg.maxArrivalQueue = 8;
        ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 17));
        ServiceMetrics m = sim.run(0.05, 0.01);
        return std::make_tuple(m.requestsArrived, m.requestsShed,
                               m.requestsCompleted,
                               m.maxArrivalQueueDepth);
    };
    EXPECT_EQ(run(), run());
}

TEST(OpenLoop, RejectsNegativeRate)
{
    ServiceConfig cfg = config(0);
    cfg.openArrivalsPerSec = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(OpenLoop, ConstantProgramReplaysLegacyPathBitIdentical)
{
    auto run = [](bool program) {
        ServiceConfig cfg = config(program ? 0 : 120000);
        if (program)
            cfg.arrivalProgram = ArrivalProgram::constant(120000);
        ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 21));
        ServiceMetrics m = sim.run(0.05, 0.01);
        return std::make_tuple(m.requestsArrived, m.requestsCompleted,
                               m.meanLatencyCycles(),
                               m.latencySample.p99());
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(OpenLoop, DayTraceThroughputTracksMeanRate)
{
    // Two 50 ms steps at 0.5x and 1.5x of 100k/s (period 100 ms): the
    // thinned arrival stream must deliver the trace's mean rate over
    // whole periods, not the peak it generates candidates at.
    ServiceConfig cfg = config(0);
    cfg.arrivalProgram =
        ArrivalProgram::dayTrace(100000, {0.5, 1.5}, 0.05);
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 22));
    ServiceMetrics m = sim.run(0.2, 0.1); // measure = 2 full periods
    EXPECT_NEAR(m.qps(), 100000, 5000);
    EXPECT_EQ(m.requestsShed, 0u);
}

TEST(OpenLoop, FlashCrowdArrivesOnlyDuringSurge)
{
    // All offered load sits inside a 20 ms surge window; the thinning
    // gate must reject every candidate outside it.
    ServiceConfig cfg = config(0);
    cfg.arrivalProgram =
        ArrivalProgram::flashCrowd(150000, 0.05, 0.005, 0.02);
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 23));
    ServiceMetrics m = sim.run(0.15, 0.0);
    // Surge area: two 5 ms ramps (avg half rate) + 20 ms hold.
    double expected = 150000 * (0.005 + 0.02);
    EXPECT_NEAR(static_cast<double>(m.requestsArrived), expected,
                0.1 * expected);
    EXPECT_EQ(m.requestsArrived, m.requestsCompleted + m.requestsShed);
}

TEST(OpenLoop, BrownoutGateAttributesOverloadSheds)
{
    // 2x overload with the adaptive gate enabled on a fixed-capacity
    // service (min == max == 1 replica): the gate tightens below the
    // static bound, and every shed it causes is attributed to the
    // overload counter — a subset of total sheds.
    ServiceConfig cfg = config(400000);
    cfg.maxArrivalQueue = 64;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.intervalCycles = 1'000'000; // 1 ms control ticks
    cfg.autoscaler.sloLatencyCycles = 20000;
    cfg.autoscaler.brownout = true;
    cfg.autoscaler.brownoutFloor = 4;
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 24));
    // No warmup: the gate tightens in the first few control windows,
    // and a warmup-boundary stats reset would hide those events.
    ServiceMetrics m = sim.run(0.1, 0.0);
    EXPECT_GT(m.requestsShedOverload, 0u);
    EXPECT_LE(m.requestsShedOverload, m.requestsShed);
    EXPECT_GT(m.autoscaler.admissionTightenings, 0u);
    EXPECT_GT(m.autoscaler.breachWindows, 0u);
    // The static bound caps the backlog before the first control tick
    // can react; the gate then tightens within it, never above it.
    EXPECT_LE(m.maxArrivalQueueDepth, 64u);
    // Completions still run at capacity: degradation, not collapse.
    EXPECT_NEAR(m.qps(), 200000, 10000);
    // The control loop's view reaches the report.
    EXPECT_GT(m.autoscaler.controlWindows, 0u);
    EXPECT_NE(m.summaryJson().find("\"autoscaler\""),
              std::string::npos);
    EXPECT_NE(m.summaryJson().find("\"requests_shed_overload\""),
              std::string::npos);
}

} // namespace
} // namespace accel::microsim

/** @file Tests for workload specs and request sampling. */

#include "microsim/request_gen.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::microsim {
namespace {

std::shared_ptr<const BucketDist>
sizes()
{
    return std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{100, 200, 1.0}});
}

WorkloadSpec
spec()
{
    WorkloadSpec s;
    s.nonKernelCyclesMean = 5000;
    s.nonKernelCv = 0.0;
    s.kernelsPerRequest = 2;
    s.granularity = sizes();
    s.cyclesPerByte = 4.0;
    return s;
}

TEST(WorkloadSpec, ValidationRules)
{
    EXPECT_NO_THROW(spec().validate());

    WorkloadSpec s = spec();
    s.kernelsPerRequest = 1;
    s.granularity = nullptr;
    EXPECT_THROW(s.validate(), FatalError);

    s = spec();
    s.cyclesPerByte = 0;
    EXPECT_THROW(s.validate(), FatalError);

    s = spec();
    s.nonKernelCyclesMean = 0;
    s.kernelsPerRequest = 0;
    EXPECT_THROW(s.validate(), FatalError);

    s = spec();
    s.beta = 0;
    EXPECT_THROW(s.validate(), FatalError);
}

TEST(WorkloadSpec, ImpliedAlpha)
{
    WorkloadSpec s = spec();
    // Mean granularity 150, Cb 4, 2 kernels: 1200 kernel cycles.
    EXPECT_NEAR(s.meanKernelCycles(), 1200, 1e-9);
    EXPECT_NEAR(s.impliedAlpha(), 1200.0 / 6200.0, 1e-9);
}

TEST(RequestSource, DeterministicRequests)
{
    RequestSource a(spec(), 42), b(spec(), 42);
    for (int i = 0; i < 20; ++i) {
        Request ra = a.next(), rb = b.next();
        EXPECT_DOUBLE_EQ(ra.nonKernelCycles(), rb.nonKernelCycles());
        ASSERT_EQ(ra.kernels.size(), rb.kernels.size());
        for (size_t k = 0; k < ra.kernels.size(); ++k)
            EXPECT_DOUBLE_EQ(ra.kernels[k].bytes, rb.kernels[k].bytes);
    }
}

TEST(RequestSource, KernelCyclesFollowGranularity)
{
    RequestSource src(spec(), 7);
    for (int i = 0; i < 100; ++i) {
        Request r = src.next();
        ASSERT_EQ(r.kernels.size(), 2u);
        for (const auto &k : r.kernels) {
            EXPECT_GE(k.bytes, 100);
            EXPECT_LT(k.bytes, 200);
            EXPECT_DOUBLE_EQ(k.hostCycles, 4.0 * k.bytes);
        }
    }
}

TEST(RequestSource, ZeroCvMakesDeterministicNonKernel)
{
    RequestSource src(spec(), 7);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(src.next().nonKernelCycles(), 5000);
}

TEST(RequestSource, LogNormalPreservesMean)
{
    WorkloadSpec s = spec();
    s.nonKernelCv = 0.5;
    RequestSource src(s, 8);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += src.next().nonKernelCycles();
    EXPECT_NEAR(sum / n, 5000, 50);
}

TEST(RequestSource, TotalHostCycles)
{
    RequestSource src(spec(), 9);
    Request r = src.next();
    double expected = r.nonKernelCycles();
    for (const auto &k : r.kernels)
        expected += k.hostCycles;
    EXPECT_DOUBLE_EQ(r.totalHostCycles(), expected);
}

TEST(RequestSource, SuperLinearKernelCycles)
{
    WorkloadSpec s = spec();
    s.beta = 2.0;
    RequestSource src(s, 10);
    Request r = src.next();
    for (const auto &k : r.kernels)
        EXPECT_DOUBLE_EQ(k.hostCycles, 4.0 * k.bytes * k.bytes);
}

} // namespace
} // namespace accel::microsim

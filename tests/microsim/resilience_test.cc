/**
 * @file
 * Tests for degraded-mode offload: deadlines, retry/backoff, host
 * fallback, the circuit breaker, and deterministic fault replay.
 */

#include <gtest/gtest.h>

#include "faults/fault_plan.hh"
#include "microsim/ab_test.hh"
#include "microsim/service_sim.hh"
#include "microsim/service_spec.hh"
#include "util/logging.hh"

namespace accel::microsim {
namespace {

/** Spec-path construction for the common (cfg, dev, work, seed) shape. */
ServiceSpec
simSpec(const ServiceConfig &cfg, const AcceleratorConfig &dev,
        const WorkloadSpec &work, std::uint64_t seed)
{
    return ServiceSpec()
        .service(cfg)
        .accelerator(dev)
        .workload(work)
        .seed(seed);
}

using model::ThreadingDesign;

WorkloadSpec
workload()
{
    WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.0;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{500, 501, 1.0}});
    w.cyclesPerByte = 2.0; // ~1000 host cycles per kernel
    return w;
}

ServiceConfig
service()
{
    ServiceConfig cfg;
    cfg.cores = 1;
    cfg.threads = 1;
    cfg.design = ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    return cfg;
}

AcceleratorConfig
device(std::shared_ptr<const faults::FaultPlan> plan = nullptr)
{
    AcceleratorConfig dev;
    dev.speedupFactor = 5;
    dev.fixedLatencyCycles = 50;
    dev.faultPlan = std::move(plan);
    return dev;
}

std::shared_ptr<const faults::FaultPlan>
dropPlan(double p, std::uint64_t seed = 11)
{
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->seed = seed;
    plan->dropProbability = p;
    return plan;
}

RetryPolicy
retryPolicy(std::uint32_t attempts)
{
    RetryPolicy r;
    r.timeoutCycles = 2000;
    r.maxAttempts = attempts;
    r.backoffBaseCycles = 500;
    r.backoffCapCycles = 2000;
    return r;
}

/** Warning spam from fault storms is expected; keep test logs clean. */
struct SilenceLogs
{
    LogLevel prev = setLogLevel(LogLevel::Silent);
    ~SilenceLogs() { setLogLevel(prev); }
};

TEST(Resilience, TimeoutThenRetrySucceedsAfterRecovery)
{
    SilenceLogs quiet;
    // Device dead from tick 0 to 30000: early offloads time out and
    // retry with backoff until the device comes back, then succeed.
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->deviceFailAtTick = 0;
    plan->deviceRecoverAtTick = 30000;

    ServiceConfig cfg = service();
    cfg.retry = retryPolicy(50);
    ServiceSim sim(simSpec(cfg, device(plan), workload(), 21));
    ServiceMetrics m = sim.run(0.01, 0.0);

    EXPECT_GT(m.offloadTimeouts, 0u);
    EXPECT_GT(m.offloadRetries, 0u);
    EXPECT_EQ(m.hostFallbacks, 0u); // retries always won in the end
    EXPECT_EQ(m.offloadsAbandoned, 0u);
    EXPECT_EQ(m.requestsFailed, 0u);
    EXPECT_GT(m.requestsCompleted, 100u);
    EXPECT_GT(m.requestsDegraded, 0u); // the pre-recovery requests
    EXPECT_LT(m.requestsDegraded, m.requestsCompleted);
    EXPECT_GT(m.accelerator.lostToDeviceFailure, 0u);
}

TEST(Resilience, RetryExhaustionFallsBackToHost)
{
    SilenceLogs quiet;
    ServiceConfig cfg = service();
    cfg.retry = retryPolicy(2);
    ServiceSim sim(simSpec(cfg, device(dropPlan(1.0)), workload(), 22));
    ServiceMetrics m = sim.run(0.01, 0.0);

    EXPECT_GT(m.hostFallbacks, 0u);
    EXPECT_EQ(m.hostFallbacks, m.offloadRetries); // one retry each
    EXPECT_EQ(m.requestsFailed, 0u);  // fallback work still counts
    EXPECT_GT(m.fallbackHostCycles, 0.0);
    EXPECT_DOUBLE_EQ(m.goodputQps(), m.qps());
    EXPECT_EQ(m.requestsDegraded, m.requestsCompleted);
}

TEST(Resilience, AbandonmentWithoutFallbackCountsAsFailed)
{
    SilenceLogs quiet;
    ServiceConfig cfg = service();
    cfg.retry = retryPolicy(2);
    cfg.retry.hostFallback = false;
    ServiceSim sim(simSpec(cfg, device(dropPlan(1.0)), workload(), 23));
    ServiceMetrics m = sim.run(0.01, 0.0);

    EXPECT_GT(m.offloadsAbandoned, 0u);
    EXPECT_EQ(m.hostFallbacks, 0u);
    EXPECT_EQ(m.requestsFailed, m.requestsCompleted);
    EXPECT_DOUBLE_EQ(m.goodputQps(), 0.0);
    EXPECT_GT(m.qps(), 0.0); // requests still terminate
}

TEST(Resilience, BreakerOpensProbesAndCloses)
{
    SilenceLogs quiet;
    // Dead until tick 100k: the breaker opens on the initial timeout
    // burst, probes fail while the device is down, then a probe lands
    // after recovery and closes the breaker.
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->deviceFailAtTick = 0;
    plan->deviceRecoverAtTick = 100000;

    ServiceConfig cfg = service();
    cfg.retry = retryPolicy(1);
    cfg.retry.timeoutCycles = 1000;
    cfg.breaker.enabled = true;
    cfg.breaker.window = 8;
    cfg.breaker.minSamples = 4;
    cfg.breaker.openThreshold = 0.5;
    cfg.breaker.probeAfterCycles = 20000;
    ServiceSim sim(simSpec(cfg, device(plan), workload(), 24));
    ServiceMetrics m = sim.run(0.01, 0.0);

    EXPECT_GE(m.breakerOpens, 1u);
    EXPECT_GE(m.breakerProbes, 2u); // failed probes plus the closer
    EXPECT_GE(m.breakerCloses, 1u);
    EXPECT_GT(m.breakerFallbacks, 0u);
    EXPECT_EQ(m.requestsFailed, 0u);
    // After the close the device serves normally again.
    EXPECT_GT(m.accelerator.served, 100u);
}

TEST(Resilience, TotalFailureTerminatesAndKeepsGoodputViaFallback)
{
    SilenceLogs quiet;
    // 100% drop rate, no breaker: every kernel walks the full ladder.
    // The run must terminate (bounded retries) and every request still
    // completes on the host.
    ServiceConfig cfg = service();
    cfg.retry = retryPolicy(3);
    ServiceSim sim(simSpec(cfg, device(dropPlan(1.0)), workload(), 25));
    ServiceMetrics m = sim.run(0.01, 0.0);

    EXPECT_GT(m.requestsCompleted, 0u);
    EXPECT_EQ(m.requestsFailed, 0u);
    // One kernel per request, so fallbacks track completions; the last
    // request may have fallen back but not yet completed at end tick.
    EXPECT_NEAR(static_cast<double>(m.hostFallbacks),
                static_cast<double>(m.requestsCompleted), 1.0);
    EXPECT_GT(m.goodputQps(), 0.0);
}

TEST(Resilience, LateCompletionsLoseTheDeadlineRace)
{
    SilenceLogs quiet;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->seed = 5;
    plan->lateProbability = 1.0;
    plan->lateDelayCycles = 50000; // far beyond any deadline

    ServiceConfig cfg = service();
    cfg.retry = retryPolicy(1);
    ServiceSim sim(simSpec(cfg, device(plan), workload(), 26));
    ServiceMetrics m = sim.run(0.01, 0.0);

    EXPECT_GT(m.offloadTimeouts, 0u);
    EXPECT_GT(m.lateCompletionsIgnored, 0u);
    EXPECT_GT(m.hostFallbacks, 0u);
    EXPECT_EQ(m.requestsFailed, 0u);
}

TEST(Resilience, EveryThreadingDesignSurvivesFaults)
{
    SilenceLogs quiet;
    struct Case
    {
        ThreadingDesign design;
        std::uint32_t cores, threads;
    };
    const std::vector<Case> cases = {
        {ThreadingDesign::Sync, 1, 1},
        {ThreadingDesign::SyncOS, 1, 3},
        {ThreadingDesign::AsyncSameThread, 1, 1},
        {ThreadingDesign::AsyncDistinctThread, 1, 1},
        {ThreadingDesign::AsyncNoResponse, 1, 1},
    };
    for (const Case &c : cases) {
        ServiceConfig cfg = service();
        cfg.design = c.design;
        cfg.cores = c.cores;
        cfg.threads = c.threads;
        cfg.contextSwitchCycles = 100;
        cfg.retry = retryPolicy(2);
        ServiceSim sim(simSpec(cfg, device(dropPlan(0.5)), workload(), 27));
        ServiceMetrics m = sim.run(0.01, 0.0);
        EXPECT_GT(m.requestsCompleted, 0u)
            << "design " << static_cast<int>(c.design);
        EXPECT_GT(m.hostFallbacks, 0u)
            << "design " << static_cast<int>(c.design);
        EXPECT_EQ(m.requestsFailed, 0u)
            << "design " << static_cast<int>(c.design);
    }
}

TEST(Resilience, DeterministicFaultReplay)
{
    SilenceLogs quiet;
    auto run = [] {
        auto plan = std::make_shared<faults::FaultPlan>();
        plan->seed = 99;
        plan->dropProbability = 0.3;
        plan->lateProbability = 0.2;
        plan->lateDelayCycles = 3000;
        plan->transferSpikeProbability = 0.1;
        plan->transferSpikeFactor = 8;
        ServiceConfig cfg = service();
        cfg.retry = retryPolicy(3);
        ServiceSim sim(simSpec(cfg, device(plan), workload(), 31));
        return sim.run(0.01, 0.0);
    };
    ServiceMetrics a = run();
    ServiceMetrics b = run();
    EXPECT_EQ(a.requestsCompleted, b.requestsCompleted);
    EXPECT_EQ(a.offloadTimeouts, b.offloadTimeouts);
    EXPECT_EQ(a.offloadRetries, b.offloadRetries);
    EXPECT_EQ(a.hostFallbacks, b.hostFallbacks);
    EXPECT_EQ(a.requestsDegraded, b.requestsDegraded);
    EXPECT_EQ(a.accelerator.droppedResponses,
              b.accelerator.droppedResponses);
    EXPECT_EQ(a.accelerator.lateResponses, b.accelerator.lateResponses);
    EXPECT_EQ(a.accelerator.spikedTransfers,
              b.accelerator.spikedTransfers);
    EXPECT_DOUBLE_EQ(a.meanLatencyCycles(), b.meanLatencyCycles());
    EXPECT_DOUBLE_EQ(a.latencySample.p99(), b.latencySample.p99());
}

TEST(Resilience, InertPlanMatchesNoPlanBitForBit)
{
    // Fault-off parity at unit scope: a constructed-but-empty plan must
    // leave every metric identical to running without the subsystem.
    auto run = [](std::shared_ptr<const faults::FaultPlan> plan) {
        ServiceSim sim(simSpec(service(), device(std::move(plan)), workload(),
                       32));
        return sim.run(0.01, 0.0);
    };
    ServiceMetrics without = run(nullptr);
    ServiceMetrics inert = run(std::make_shared<faults::FaultPlan>());
    EXPECT_EQ(without.requestsCompleted, inert.requestsCompleted);
    EXPECT_EQ(without.offloadsIssued, inert.offloadsIssued);
    EXPECT_DOUBLE_EQ(without.meanLatencyCycles(),
                     inert.meanLatencyCycles());
    EXPECT_DOUBLE_EQ(without.coreBusyCycles, inert.coreBusyCycles);
    EXPECT_EQ(without.accelerator.served, inert.accelerator.served);
}

TEST(Resilience, RetryPolicyOffMatchesPreFaultPath)
{
    // An engaged-but-never-firing policy must not change results
    // either: with a healthy device the deadline never expires.
    auto run = [](RetryPolicy retry) {
        ServiceConfig cfg = service();
        cfg.retry = retry;
        ServiceSim sim(simSpec(cfg, device(), workload(), 33));
        return sim.run(0.01, 0.0);
    };
    ServiceMetrics off = run(RetryPolicy{});
    ServiceMetrics armed = run(retryPolicy(3)); // timeout 2000 >> ~300
    EXPECT_EQ(off.requestsCompleted, armed.requestsCompleted);
    EXPECT_DOUBLE_EQ(off.meanLatencyCycles(), armed.meanLatencyCycles());
    EXPECT_EQ(armed.offloadTimeouts, 0u);
    EXPECT_EQ(armed.requestsDegraded, 0u);
}

TEST(Resilience, ResilienceAbTestComparesAgainstHostOnly)
{
    SilenceLogs quiet;
    AbExperiment e;
    e.service = service();
    e.service.retry = retryPolicy(1);
    e.service.retry.timeoutCycles = 1000;
    e.service.breaker.enabled = true;
    e.service.breaker.window = 8;
    e.service.breaker.minSamples = 4;
    e.service.breaker.probeAfterCycles = 50000;
    e.accelerator = device(dropPlan(1.0, 77));
    e.workload = workload();
    e.seed = 34;
    e.measureSeconds = 0.02;
    e.warmupSeconds = 0.005;

    ResilienceAbResult r = runResilienceAbTest(e);
    EXPECT_EQ(r.hostOnly.offloadsIssued, 0u);
    EXPECT_EQ(r.hostOnly.requestsFailed, 0u);
    EXPECT_GT(r.resilient.breakerFallbacks, 0u);
    // Dead device + breaker: goodput converges to the host-only arm.
    EXPECT_NEAR(r.goodputRatio(), 1.0, 0.05);
}

TEST(Resilience, ValidationRejectsDegeneratePolicies)
{
    ServiceConfig cfg = service();
    cfg.retry.timeoutCycles = -1;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = service();
    cfg.retry.timeoutCycles = 1000;
    cfg.retry.maxAttempts = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = service();
    cfg.retry.timeoutCycles = 1000;
    cfg.retry.backoffFactor = 0.5;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = service();
    cfg.breaker.enabled = true; // breaker without a timeout signal
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = service();
    cfg.retry.timeoutCycles = 1000;
    cfg.breaker.enabled = true;
    cfg.breaker.minSamples = 64;
    cfg.breaker.window = 32; // minSamples > window
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = service();
    cfg.retry.timeoutCycles = 1000;
    cfg.breaker.enabled = true;
    cfg.breaker.openThreshold = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

} // namespace
} // namespace accel::microsim

/**
 * @file
 * ServiceGraph: multi-service RPC fan-out on one clock. Covers the
 * single-node ≡ standalone bit-compatibility contract, sync join
 * arithmetic, fan-out amplification, async fire-and-forget semantics,
 * RPC shedding, shared-tier contention, assembly-error aggregation,
 * and seed determinism.
 */

#include <gtest/gtest.h>

#include "microsim/service_graph.hh"
#include "util/logging.hh"

namespace accel::microsim {
namespace {

using model::ThreadingDesign;

/** ~5000-cycle host-only request: 4000 non-kernel + 500 B at 2 cyc/B. */
WorkloadSpec
workload()
{
    WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.0;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{500, 501, 1.0}});
    w.cyclesPerByte = 2.0;
    return w;
}

ServiceConfig
config(double arrivalsPerSec = 0)
{
    ServiceConfig cfg;
    cfg.cores = 1;
    cfg.threads = 1;
    cfg.design = ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    cfg.accelerated = false;
    cfg.openArrivalsPerSec = arrivalsPerSec;
    return cfg;
}

ServiceSpec
node(const std::string &name, double arrivalsPerSec = 0)
{
    return ServiceSpec(name)
        .service(config(arrivalsPerSec))
        .accelerator(AcceleratorConfig{})
        .workload(workload())
        .seed(9);
}

EdgeConfig
edge(const std::string &caller, const std::string &callee,
     std::uint32_t fanout = 1, CallStyle style = CallStyle::Sync,
     double latency = 1000)
{
    EdgeConfig e;
    e.caller = caller;
    e.callee = callee;
    e.fanout = fanout;
    e.style = style;
    e.latencyCycles = latency;
    return e;
}

TEST(ServiceGraph, SingleNodeGraphBitIdenticalToStandalone)
{
    // The tentpole's compatibility contract: wrapping one service in a
    // graph must not perturb a single simulated tick.
    ServiceMetrics standalone =
        ServiceSim(node("solo", 50000)).run(0.05, 0.01);

    ServiceGraph graph(1);
    graph.addService(node("solo", 50000));
    GraphMetrics gm = graph.run(0.05, 0.01);

    EXPECT_EQ(gm.node("solo").service.summaryJson(),
              standalone.summaryJson());
    // With no edges, every completion is a root that joins instantly.
    EXPECT_EQ(gm.rootsCompleted, standalone.requestsCompleted);
    EXPECT_EQ(gm.rootLatencyCycles.count(),
              standalone.latencySample.count());
    EXPECT_DOUBLE_EQ(gm.rootLatencyCycles.p99(),
                     standalone.latencySample.p99());
}

TEST(ServiceGraph, SyncEdgeAddsHopsAndCalleeServiceToRootPath)
{
    // Deterministic everything: root subtree latency must be the
    // caller's service time plus out-hop + callee service + return
    // hop. Light load so queueing is negligible.
    ServiceGraph graph(2);
    graph.addService(node("web", 20000));
    graph.addService(node("cache"));
    graph.addEdge(edge("web", "cache", 1, CallStyle::Sync, 1000));
    GraphMetrics gm = graph.run(0.05, 0.01);

    ASSERT_GT(gm.rootsCompleted, 0u);
    double web_p50 = gm.node("web").service.latencySample.p50();
    double cache_p50 = gm.node("cache").service.latencySample.p50();
    double root_p50 = gm.rootLatencyCycles.p50();
    // Root = web service + 1000 out + cache service + 1000 back.
    EXPECT_NEAR(root_p50, web_p50 + 1000 + cache_p50 + 1000,
                0.05 * root_p50);
    // The edge RTT is everything below the caller.
    double rtt_p50 = gm.edges.front().rttCycles.p50();
    EXPECT_NEAR(rtt_p50, 1000 + cache_p50 + 1000, 0.05 * rtt_p50);
}

TEST(ServiceGraph, FanOutJoinWaitsForSlowestChild)
{
    // With exponential jitter on the hop, a 4-way fan-out joins on the
    // max of four draws: its tail must sit clearly above 1-way's.
    auto runFan = [](std::uint32_t fanout) {
        ServiceGraph graph(3);
        graph.addService(node("web", 10000));
        ServiceSpec backend = node("cache");
        backend.service().threads = 4;
        backend.service().cores = 4;
        graph.addService(backend);
        EdgeConfig e = edge("web", "cache", fanout);
        e.latencyJitterCycles = 2000;
        graph.addEdge(e);
        return graph.run(0.05, 0.01);
    };
    GraphMetrics one = runFan(1);
    GraphMetrics four = runFan(4);
    ASSERT_GT(one.rootsCompleted, 0u);
    ASSERT_GT(four.rootsCompleted, 0u);
    EXPECT_GT(four.rootLatencyCycles.p99(),
              one.rootLatencyCycles.p99());
    EXPECT_EQ(four.edges.front().callsIssued,
              4 * four.rootsStarted);
}

TEST(ServiceGraph, AsyncEdgeDoesNotExtendCallerPath)
{
    auto runStyle = [](CallStyle style) {
        ServiceGraph graph(4);
        graph.addService(node("web", 20000));
        graph.addService(node("log"));
        graph.addEdge(edge("web", "log", 1, style, 50000));
        return graph.run(0.05, 0.01);
    };
    GraphMetrics sync = runStyle(CallStyle::Sync);
    GraphMetrics async = runStyle(CallStyle::Async);
    ASSERT_GT(async.rootsCompleted, 0u);
    // Fire-and-forget: the root joins at the caller's own latency...
    EXPECT_NEAR(async.rootLatencyCycles.p50(),
                async.node("web").service.latencySample.p50(),
                1.0);
    EXPECT_GT(sync.rootLatencyCycles.p50(),
              async.rootLatencyCycles.p50() + 100000);
    // ...while the callee still absorbs the offered load.
    EXPECT_GT(async.node("log").service.requestsCompleted, 0u);
    EXPECT_GT(async.edges.front().callsCompleted, 0u);
}

TEST(ServiceGraph, ShedRpcFailsTheSyncCallerSubtree)
{
    // The callee admits one queued request at a time and serves
    // ~200k cycles each against a ~100k-cycle call gap: most RPCs are
    // shed at admission and the failure joins into the caller's root.
    ServiceGraph graph(5);
    graph.addService(node("web", 10000));
    ServiceSpec slow = node("store");
    WorkloadSpec heavy = workload();
    heavy.nonKernelCyclesMean = 200000;
    slow.workload(heavy);
    slow.service().maxArrivalQueue = 1;
    graph.addService(slow);
    graph.addEdge(edge("web", "store"));
    GraphMetrics gm = graph.run(0.05, 0.01);

    EXPECT_GT(gm.edges.front().callsShed, 0u);
    EXPECT_GT(gm.rootsFailed, 0u);
    EXPECT_EQ(gm.node("store").service.requestsShed,
              gm.edges.front().callsShed);
    // Shed accounting rolls up to the graph level.
    EXPECT_EQ(gm.graphRequestsShed, gm.node("store").service.requestsShed);
}

TEST(ServiceGraph, SharedTierAbsorbsOffloadsFromEverySubscriber)
{
    auto accelNode = [](const std::string &name, double load) {
        ServiceConfig cfg = config(load);
        cfg.accelerated = true;
        cfg.offloadSetupCycles = 20;
        return ServiceSpec(name)
            .service(cfg)
            .accelerator(AcceleratorConfig{})
            .workload(workload())
            .seed(9)
            .sharedTier("infer");
    };
    AcceleratorConfig dev;
    dev.speedupFactor = 8;
    dev.fixedLatencyCycles = 40;

    // Two replicas: a trivial tier would bypass the tier-level offload
    // counter and hand requests straight to its single device.
    TierConfig tierCfg;
    tierCfg.replicas = 2;

    ServiceGraph graph(6);
    graph.addService(accelNode("ads", 20000));
    graph.addService(accelNode("feed", 20000));
    graph.addSharedTier("infer", dev, tierCfg);
    GraphMetrics gm = graph.run(0.05, 0.01);

    ASSERT_EQ(gm.sharedTiers.size(), 1u);
    const SharedTierMetrics &st = gm.sharedTiers.front();
    EXPECT_EQ(st.tierName, "infer");
    std::uint64_t issued = gm.node("ads").service.offloadsIssued +
                           gm.node("feed").service.offloadsIssued;
    EXPECT_GT(gm.node("ads").service.offloadsIssued, 0u);
    EXPECT_GT(gm.node("feed").service.offloadsIssued, 0u);
    EXPECT_EQ(st.tierStats.offloads, issued);
    EXPECT_EQ(st.aggregateDevice.served, issued);
    // The per-node tier/device blocks stay zero: the contention story
    // lives in the shared-tier metrics, counted once.
    EXPECT_EQ(gm.node("ads").service.tier.offloads, 0u);
    EXPECT_EQ(gm.node("ads").service.accelerator.served, 0u);
}

TEST(ServiceGraph, ErrorsAggregateAcrossNodesEdgesAndTiers)
{
    ServiceConfig bad = config();
    bad.clockGHz = 0.0;
    ServiceGraph graph(7);
    graph.addService(ServiceSpec("broken")
                         .service(bad)
                         .accelerator(AcceleratorConfig{})
                         .workload(workload()));
    graph.addService(node("web"));
    graph.addService(node("web")); // duplicate name
    graph.addEdge(edge("web", "nowhere"));
    graph.addSharedTier("unused", AcceleratorConfig{}, TierConfig{});

    std::vector<std::string> errs = graph.errors();
    auto contains = [&errs](const std::string &needle) {
        for (const std::string &e : errs) {
            if (e.find(needle) != std::string::npos)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(contains("node 'broken': ServiceConfig.clockGHz"));
    EXPECT_TRUE(contains("duplicate service name 'web'"));
    EXPECT_TRUE(contains("no service named 'nowhere'"));
    EXPECT_TRUE(contains("shared tier 'unused' is not referenced"));
    EXPECT_THROW(graph.validate(), FatalError);
}

TEST(ServiceGraph, CyclesAndSelfCallsAreRejected)
{
    ServiceGraph graph(8);
    graph.addService(node("a", 1000));
    graph.addService(node("b"));
    graph.addService(node("c"));
    graph.addEdge(edge("a", "b"));
    graph.addEdge(edge("b", "c"));
    graph.addEdge(edge("c", "b")); // b -> c -> b
    graph.addEdge(edge("a", "a")); // self-call

    std::vector<std::string> errs = graph.errors();
    bool cycle = false;
    bool self = false;
    for (const std::string &e : errs) {
        cycle = cycle || e.find("must be a DAG") != std::string::npos;
        self = self || e.find("cannot call itself") != std::string::npos;
    }
    EXPECT_TRUE(cycle);
    EXPECT_TRUE(self);
}

TEST(ServiceGraph, FaultOffEdgesNeverEnterTheResilienceLayer)
{
    // The containment layer's absence contract: a plain edge takes the
    // legacy dispatch path — zero attempts accounted, zero timers,
    // every resilience counter identically zero. This is what keeps
    // fault-off runs bit-identical to the pre-layer simulator.
    ServiceGraph graph(42);
    graph.addService(node("web", 15000));
    graph.addService(node("leaf"));
    graph.addEdge(edge("web", "leaf"));
    GraphMetrics m = graph.run(0.03, 0.01);

    const EdgeStats &es = m.edges.at(0);
    EXPECT_GT(es.callsIssued, 0u);
    EXPECT_EQ(es.attemptsIssued, 0u);
    EXPECT_EQ(es.callsDropped, 0u);
    EXPECT_EQ(es.callsBlackholed, 0u);
    EXPECT_EQ(es.attemptsTimedOut, 0u);
    EXPECT_EQ(es.attemptsRetried, 0u);
    EXPECT_EQ(es.retriesSuppressed, 0u);
    EXPECT_EQ(es.callsDeadlineExceeded, 0u);
    EXPECT_EQ(es.callsCancelledBudget, 0u);
    EXPECT_EQ(es.callsShortCircuited, 0u);
    EXPECT_EQ(es.callsFailed, 0u);
    EXPECT_EQ(es.callsCompletedIgnored, 0u);
    EXPECT_EQ(es.breakerOpens, 0u);
    EXPECT_EQ(m.rootsDegraded, 0u);
    EXPECT_EQ(m.node("web").subtreesPrunedBudget, 0u);
}

TEST(ServiceGraph, SameSeedReplaysBitIdentically)
{
    auto build = []() {
        ServiceGraph graph(42);
        graph.addService(node("web", 15000));
        graph.addService(node("mid"));
        graph.addService(node("leaf"));
        EdgeConfig hop1 = edge("web", "mid", 2);
        hop1.latencyJitterCycles = 500;
        EdgeConfig hop2 = edge("mid", "leaf", 1, CallStyle::Async, 2000);
        graph.addEdge(hop1);
        graph.addEdge(hop2);
        return graph.run(0.03, 0.01);
    };
    EXPECT_EQ(build().summaryJson(), build().summaryJson());
}

} // namespace
} // namespace accel::microsim

/** @file Behavioural tests for the closed-loop service simulator. */

#include "microsim/service_sim.hh"
#include "microsim/service_spec.hh"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "util/logging.hh"

namespace accel::microsim {
namespace {

/** Spec-path construction for the common (cfg, dev, work, seed) shape. */
ServiceSpec
simSpec(const ServiceConfig &cfg, const AcceleratorConfig &dev,
        const WorkloadSpec &work, std::uint64_t seed)
{
    return ServiceSpec()
        .service(cfg)
        .accelerator(dev)
        .workload(work)
        .seed(seed);
}

using model::Strategy;
using model::ThreadingDesign;

std::shared_ptr<const BucketDist>
fixedSizes(double bytes)
{
    return std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{bytes, bytes + 1, 1.0}});
}

/** Deterministic workload: 4000 non-kernel + one 1000-cycle kernel. */
WorkloadSpec
workload()
{
    WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.0;
    w.kernelsPerRequest = 1;
    w.granularity = fixedSizes(500);
    w.cyclesPerByte = 2.0; // ~1000 cycles per kernel
    return w;
}

ServiceConfig
baseConfig(ThreadingDesign design)
{
    ServiceConfig cfg;
    cfg.cores = 1;
    cfg.threads = design == ThreadingDesign::SyncOS ? 4 : 1;
    cfg.design = design;
    cfg.clockGHz = 1.0; // 1e9 cycles per second
    return cfg;
}

TEST(ServiceConfig, ValidationRules)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    EXPECT_NO_THROW(cfg.validate());

    cfg.threads = 2; // Sync requires one thread per core
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = baseConfig(ThreadingDesign::SyncOS);
    cfg.threads = 1; // Sync-OS requires over-subscription
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = baseConfig(ThreadingDesign::Sync);
    cfg.clockGHz = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = baseConfig(ThreadingDesign::Sync);
    cfg.maxOutstanding = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(ServiceConfig, ValidationRejectsDegenerateValues)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    cfg.cores = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = baseConfig(ThreadingDesign::Sync);
    cfg.offloadSetupCycles = -5;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = baseConfig(ThreadingDesign::Sync);
    cfg.contextSwitchCycles =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = baseConfig(ThreadingDesign::Sync);
    cfg.minOffloadBytes = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = baseConfig(ThreadingDesign::Sync);
    cfg.responsePickupCycles = -1;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = baseConfig(ThreadingDesign::Sync);
    cfg.clockGHz = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(ServiceConfig, ValidationMessagesNameTheField)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    cfg.maxOutstanding = 0;
    try {
        cfg.validate();
        FAIL() << "maxOutstanding = 0 accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("maxOutstanding"),
                  std::string::npos);
    }

    cfg = baseConfig(ThreadingDesign::Sync);
    cfg.minOffloadBytes = -1;
    try {
        cfg.validate();
        FAIL() << "negative minOffloadBytes accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("minOffloadBytes"),
                  std::string::npos);
    }
}

TEST(ServiceSim, BaselineThroughputMatchesArithmetic)
{
    // Unaccelerated: each request costs 5000 cycles + 2 rounding cycles
    // at most; 1e9 cycles/s -> ~200k QPS.
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    cfg.accelerated = false;
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 1));
    ServiceMetrics m = sim.run(0.1, 0.01);
    EXPECT_NEAR(m.qps(), 200000, 2000);
    EXPECT_EQ(m.offloadsIssued, 0u);
    EXPECT_EQ(m.kernelsOnHost, m.requestsCompleted);
}

TEST(ServiceSim, BaselineLatencyIsRequestCost)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    cfg.accelerated = false;
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 1));
    ServiceMetrics m = sim.run(0.05, 0.01);
    EXPECT_NEAR(m.meanLatencyCycles(), 5000, 60);
}

TEST(ServiceSim, SyncSpeedupMatchesModelArithmetic)
{
    // Sync offload, A=5, L=100, o0=50: per-request core time becomes
    // 4000 + 50 + (100 + 200 held) -> throughput 1e9 / 4350.
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    cfg.offloadSetupCycles = 50;
    AcceleratorConfig acc;
    acc.speedupFactor = 5;
    acc.fixedLatencyCycles = 100;
    ServiceSim sim(simSpec(cfg, acc, workload(), 1));
    ServiceMetrics m = sim.run(0.1, 0.01);
    EXPECT_NEAR(m.qps(), 1e9 / 4350.0, 1e9 / 4350.0 * 0.02);
    EXPECT_GT(m.coreHeldIdleCycles, 0);
}

TEST(ServiceSim, SyncOSReleasesCoreDuringOffload)
{
    // Slow accelerator; over-subscribed threads keep the core busy, so
    // throughput beats Sync under the same device.
    WorkloadSpec w = workload();
    AcceleratorConfig acc;
    acc.speedupFactor = 1; // service = 1000 cycles
    acc.fixedLatencyCycles = 2000;

    ServiceConfig sync_cfg = baseConfig(ThreadingDesign::Sync);
    ServiceMetrics sync =
        ServiceSim(simSpec(sync_cfg, acc, w, 1)).run(0.05, 0.01);

    ServiceConfig os_cfg = baseConfig(ThreadingDesign::SyncOS);
    os_cfg.contextSwitchCycles = 100;
    os_cfg.driverWaitsForAck = false;
    ServiceMetrics os = ServiceSim(simSpec(os_cfg, acc, w, 1)).run(0.05, 0.01);

    EXPECT_GT(os.qps(), sync.qps() * 1.2);
    EXPECT_GT(os.switchOverheadCycles, 0);
}

TEST(ServiceSim, SyncOSChargesTwoSwitchesPerOffload)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::SyncOS);
    cfg.contextSwitchCycles = 150;
    cfg.driverWaitsForAck = false;
    AcceleratorConfig acc;
    acc.speedupFactor = 1;
    acc.fixedLatencyCycles = 3000;
    ServiceSim sim(simSpec(cfg, acc, workload(), 1));
    ServiceMetrics m = sim.run(0.05, 0.01);
    ASSERT_GT(m.offloadsIssued, 0u);
    EXPECT_NEAR(m.switchOverheadCycles /
                    static_cast<double>(m.offloadsIssued),
                300.0, 30.0);
}

TEST(ServiceSim, AsyncOverlapsAcceleratorWork)
{
    // Async same-thread: accelerator time leaves the throughput path;
    // per-request core time = 4000 + L-hold.
    ServiceConfig cfg = baseConfig(ThreadingDesign::AsyncSameThread);
    AcceleratorConfig acc;
    acc.speedupFactor = 2;
    acc.fixedLatencyCycles = 50;
    acc.channels = 4;
    ServiceSim sim(simSpec(cfg, acc, workload(), 1));
    ServiceMetrics m = sim.run(0.1, 0.01);
    EXPECT_NEAR(m.qps(), 1e9 / 4050.0, 1e9 / 4050.0 * 0.03);
    // The response (at ~2550 cycles) beats the host work (4050), so
    // latency is host-bound here.
    EXPECT_NEAR(m.meanLatencyCycles(), 4050, 120);
}

TEST(ServiceSim, AsyncBackpressureBounded)
{
    // A slow single-channel device with a tiny outstanding budget must
    // throttle the host instead of queueing unboundedly.
    ServiceConfig cfg = baseConfig(ThreadingDesign::AsyncSameThread);
    cfg.maxOutstanding = 2;
    WorkloadSpec w = workload();
    w.nonKernelCyclesMean = 100; // host could issue ~10M offloads/s
    AcceleratorConfig acc;
    acc.speedupFactor = 1; // device serves only ~1M offloads/s
    ServiceSim sim(simSpec(cfg, acc, w, 1));
    ServiceMetrics m = sim.run(0.05, 0.01);
    // Throughput is bounded by the device, not the host.
    EXPECT_NEAR(m.qps(), 1e6, 5e4);
    EXPECT_LE(m.accelerator.maxQueueDepth, 3u);
}

TEST(ServiceSim, AsyncNoResponseRemoteLatencyExcludesDevice)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::AsyncNoResponse);
    cfg.strategy = Strategy::Remote;
    cfg.driverWaitsForAck = false;
    AcceleratorConfig acc;
    acc.speedupFactor = 1;
    acc.fixedLatencyCycles = 1000000; // 1 ms network
    acc.channels = 64;
    ServiceSim sim(simSpec(cfg, acc, workload(), 1));
    ServiceMetrics m = sim.run(0.05, 0.01);
    // Service-local latency excludes the remote round trip entirely.
    EXPECT_LT(m.meanLatencyCycles(), 5000);
    EXPECT_GT(m.endToEndLatencyCycles.mean(), 1000000);
}

TEST(ServiceSim, SelectiveOffloadThreshold)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    cfg.minOffloadBytes = 1000; // kernels are 500 B: none qualify
    AcceleratorConfig acc;
    acc.speedupFactor = 10;
    ServiceSim sim(simSpec(cfg, acc, workload(), 1));
    ServiceMetrics m = sim.run(0.05, 0.01);
    EXPECT_EQ(m.offloadsIssued, 0u);
    EXPECT_EQ(m.kernelsOnHost, m.requestsCompleted);
}

TEST(ServiceSim, DeterministicAcrossRuns)
{
    auto run = [] {
        ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
        AcceleratorConfig acc;
        acc.speedupFactor = 3;
        WorkloadSpec w = workload();
        w.nonKernelCv = 0.4;
        ServiceSim sim(simSpec(cfg, acc, w, 77));
        return sim.run(0.05, 0.01).requestsCompleted;
    };
    EXPECT_EQ(run(), run());
}

TEST(ServiceSim, MultiCoreScalesThroughput)
{
    ServiceConfig one = baseConfig(ThreadingDesign::Sync);
    one.accelerated = false;
    ServiceConfig four = one;
    four.cores = 4;
    four.threads = 4;
    double q1 = ServiceSim(simSpec(one, AcceleratorConfig{}, workload(), 1))
                    .run(0.05, 0.01)
                    .qps();
    double q4 = ServiceSim(simSpec(four, AcceleratorConfig{}, workload(), 1))
                    .run(0.05, 0.01)
                    .qps();
    EXPECT_NEAR(q4 / q1, 4.0, 0.1);
}

TEST(ServiceSim, RunIsSingleUse)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 1));
    sim.run(0.01, 0.0);
    EXPECT_THROW(sim.run(0.01, 0.0), PanicError);
}

TEST(ServiceSim, RunRejectsBadWindows)
{
    ServiceConfig cfg = baseConfig(ThreadingDesign::Sync);
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, workload(), 1));
    EXPECT_THROW(sim.run(0.0), FatalError);
    EXPECT_THROW(sim.run(1.0, -0.5), FatalError);
}

} // namespace
} // namespace accel::microsim

/**
 * @file
 * ServiceSpec: the unified construction API. Covers the fluent
 * builder, all-at-once error aggregation, the relocated hedge+Sync
 * cross-check, fromConfig round-tripping against hand-built specs,
 * and bit-parity of the deprecated constructor shims.
 */

#include <gtest/gtest.h>

#include "config/config.hh"
#include "microsim/service_sim.hh"
#include "microsim/service_spec.hh"
#include "util/logging.hh"

namespace accel::microsim {
namespace {

ServiceConfig
service()
{
    ServiceConfig cfg;
    cfg.cores = 2;
    cfg.threads = 2;
    cfg.design = model::ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    cfg.offloadSetupCycles = 20;
    return cfg;
}

AcceleratorConfig
device()
{
    AcceleratorConfig dev;
    dev.speedupFactor = 8;
    dev.fixedLatencyCycles = 40;
    return dev;
}

WorkloadSpec
workload()
{
    WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{400, 600, 1.0}});
    w.cyclesPerByte = 2.0;
    return w;
}

TEST(ServiceSpec, FluentBuilderRoundTripsFields)
{
    ServiceSpec spec = ServiceSpec("web")
                           .service(service())
                           .accelerator(device())
                           .workload(workload())
                           .seed(7);
    EXPECT_EQ(spec.name(), "web");
    EXPECT_EQ(spec.service().cores, 2u);
    EXPECT_DOUBLE_EQ(spec.accelerator().speedupFactor, 8.0);
    EXPECT_EQ(spec.workload().kernelsPerRequest, 1u);
    EXPECT_EQ(spec.seed(), 7u);
    EXPECT_TRUE(spec.errors().empty());
    EXPECT_NO_THROW(spec.validate());
}

TEST(ServiceSpec, BuildSimRunsTheService)
{
    std::unique_ptr<ServiceSim> sim = ServiceSpec("unit")
                                          .service(service())
                                          .accelerator(device())
                                          .workload(workload())
                                          .seed(3)
                                          .buildSim();
    ServiceMetrics m = sim->run(0.02, 0.005);
    EXPECT_GT(m.requestsCompleted, 0u);
}

TEST(ServiceSpec, ErrorsCollectsEveryProblemAtOnce)
{
    // Three independent problems: a bad service shape, a bad device,
    // and a bad workload. The old constructor path stopped at the
    // first; the spec names all of them.
    ServiceConfig svc = service();
    svc.clockGHz = 0.0;
    AcceleratorConfig dev = device();
    dev.speedupFactor = 0.0;
    WorkloadSpec w = workload();
    w.nonKernelCyclesMean = -1.0;

    ServiceSpec spec = ServiceSpec("broken")
                           .service(svc)
                           .accelerator(dev)
                           .workload(w);
    std::vector<std::string> errs = spec.errors();
    ASSERT_EQ(errs.size(), 3u);
    EXPECT_NE(errs[0].find("clockGHz"), std::string::npos);
    EXPECT_NE(errs[1].find("speedupFactor"), std::string::npos);
    EXPECT_NE(errs[2].find("non-kernel cycles"), std::string::npos);

    // validate() reports the spec name and every entry in one throw.
    try {
        spec.validate();
        FAIL() << "validate() should have thrown";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("broken"), std::string::npos);
        EXPECT_NE(msg.find("clockGHz"), std::string::npos);
        EXPECT_NE(msg.find("speedupFactor"), std::string::npos);
        EXPECT_NE(msg.find("non-kernel cycles"), std::string::npos);
    }
}

TEST(ServiceSpec, HedgeWithSyncDesignIsASpecError)
{
    // Moved out of the ServiceSim constructor: assembly-time callers
    // (ServiceGraph) collect it per node instead of dying on the first.
    TierConfig tier;
    tier.replicas = 2;
    tier.hedge.enabled = true;
    tier.hedge.delayCycles = 500;
    ServiceSpec spec = ServiceSpec("hedged")
                           .service(service())
                           .accelerator(device())
                           .tier(tier)
                           .workload(workload());
    std::vector<std::string> errs = spec.errors();
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_NE(errs.front().find("hedge"), std::string::npos);
    EXPECT_NE(errs.front().find("Sync"), std::string::npos);
}

TEST(ServiceSpec, SharedTierExcludesOwnTierAndAutoscaler)
{
    TierConfig tier;
    tier.replicas = 3;
    ServiceConfig svc = service();
    svc.openArrivalsPerSec = 50000;
    svc.maxArrivalQueue = 64;
    svc.autoscaler.enabled = true;
    svc.autoscaler.sloLatencyCycles = 1e6; // valid on its own terms
    ServiceSpec spec = ServiceSpec("contender")
                           .service(svc)
                           .accelerator(device())
                           .tier(tier)
                           .workload(workload())
                           .sharedTier("infer");
    std::vector<std::string> errs = spec.errors();
    ASSERT_EQ(errs.size(), 2u);
    EXPECT_NE(errs[0].find("non-trivial"), std::string::npos);
    EXPECT_NE(errs[1].find("autoscaler"), std::string::npos);

    // And buildSim() refuses shared tiers outright: they only exist
    // inside a ServiceGraph.
    ServiceSpec standalone = ServiceSpec("solo")
                                 .service(service())
                                 .accelerator(device())
                                 .workload(workload())
                                 .sharedTier("infer");
    EXPECT_THROW(standalone.buildSim(), FatalError);
}

TEST(ServiceSpec, FromConfigRoundTripsAgainstHandBuiltSpec)
{
    Config cfg = Config::fromString(
        "[svc]\n"
        "cores = 2\n"
        "threads = 2\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "offload_setup = 20\n"
        "accel_speedup = 8\n"
        "accel_fixed_latency = 40\n"
        "work_non_kernel_cycles = 4000\n"
        "work_kernels_per_request = 1\n"
        "work_granularity_cdf = 400:600:1.0\n"
        "work_cycles_per_byte = 2.0\n"
        "seed = 7\n");
    ServiceSpec parsed = ServiceSpec::fromConfig(cfg, "svc");
    EXPECT_EQ(parsed.name(), "svc");
    EXPECT_TRUE(parsed.errors().empty());

    ServiceSpec built = ServiceSpec("svc")
                            .service(service())
                            .accelerator(device())
                            .workload(workload())
                            .seed(7);

    // Round trip: the parsed spec must drive the simulator to the
    // bit-identical result of the hand-built equivalent.
    ServiceMetrics from_config =
        parsed.buildSim()->run(0.02, 0.005);
    ServiceMetrics from_builder =
        built.buildSim()->run(0.02, 0.005);
    EXPECT_EQ(from_config.summaryJson(), from_builder.summaryJson());
}

TEST(ServiceSpec, FromConfigParsesResilienceAndTierKeys)
{
    Config cfg = Config::fromString(
        "[svc]\n"
        "cores = 1\n"
        "threads = 2\n"
        "threading = async\n"
        "clock_ghz = 2.0\n"
        "retry_timeout = 2000\n"
        "retry_max_attempts = 3\n"
        "breaker_open_threshold = 0.4\n"
        "breaker_window = 16\n"
        "tier_replicas = 2\n"
        "work_non_kernel_cycles = 1000\n"
        "work_kernels_per_request = 1\n"
        "work_granularity_cdf = 100:200:1.0\n"
        "work_cycles_per_byte = 1.0\n"
        "shared_tier = infer\n");
    ServiceSpec spec = ServiceSpec::fromConfig(cfg, "svc");
    EXPECT_DOUBLE_EQ(spec.service().retry.timeoutCycles, 2000.0);
    EXPECT_EQ(spec.service().retry.maxAttempts, 3u);
    EXPECT_TRUE(spec.service().breaker.enabled);
    EXPECT_DOUBLE_EQ(spec.service().breaker.openThreshold, 0.4);
    EXPECT_EQ(spec.service().breaker.window, 16u);
    EXPECT_EQ(spec.tier().replicas, 2u);
    EXPECT_EQ(spec.sharedTierName(), "infer");
    // shared_tier + tier_replicas is the documented conflict.
    std::vector<std::string> errs = spec.errors();
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_NE(errs.front().find("non-trivial"), std::string::npos);
}

TEST(ServiceSpec, FromConfigRejectsUnknownKeysByName)
{
    // The classic silent-misconfiguration bug: a typoed key parses
    // fine and the run silently measures the wrong thing. fromConfig
    // now rejects any key it did not consume, naming it.
    Config cfg = Config::fromString(
        "[svc]\n"
        "cores = 1\n"
        "threads = 1\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "work_non_kernel_cycles = 1000\n"
        "tier_hege_delay = 500\n"); // typo of tier_hedge_delay
    try {
        ServiceSpec::fromConfig(cfg, "svc");
        FAIL() << "typoed key accepted";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("tier_hege_delay"), std::string::npos);
        EXPECT_NE(msg.find("svc"), std::string::npos);
    }
}

TEST(ServiceSpec, FromConfigListsEveryUnknownKey)
{
    Config cfg = Config::fromString(
        "[svc]\n"
        "cores = 1\n"
        "threads = 1\n"
        "threading = sync\n"
        "clock_ghz = 1.0\n"
        "work_non_kernel_cycles = 1000\n"
        "first_typo = 1\n"
        "second_typo = 2\n");
    try {
        ServiceSpec::fromConfig(cfg, "svc");
        FAIL() << "typoed keys accepted";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("first_typo"), std::string::npos);
        EXPECT_NE(msg.find("second_typo"), std::string::npos);
    }
}

TEST(ServiceSpec, DeprecatedConstructorShimsAreBitIdentical)
{
    ServiceMetrics via_spec = ServiceSim(ServiceSpec()
                                             .service(service())
                                             .accelerator(device())
                                             .workload(workload())
                                             .seed(11))
                                  .run(0.02, 0.005);

    TierConfig tier;
    tier.replicas = 2;
    ServiceMetrics tier_via_spec = ServiceSim(ServiceSpec()
                                                  .service(service())
                                                  .accelerator(device())
                                                  .tier(tier)
                                                  .workload(workload())
                                                  .seed(11))
                                       .run(0.02, 0.005);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    // deprecated-ok: this test is the shim-parity proof itself.
    ServiceMetrics via_shim =
        ServiceSim(service(), device(), workload(), 11).run(0.02, 0.005);
    ServiceMetrics tier_via_shim =
        ServiceSim(service(), device(), tier, workload(), 11)
            .run(0.02, 0.005);
#pragma GCC diagnostic pop

    EXPECT_EQ(via_spec.summaryJson(), via_shim.summaryJson());
    EXPECT_EQ(tier_via_spec.summaryJson(), tier_via_shim.summaryJson());
}

} // namespace
} // namespace accel::microsim

/**
 * @file
 * Tests for tagged work segments: per-tag core-cycle attribution and
 * the simulated before/after functionality breakdown (Fig. 16 measured
 * from the simulator instead of computed analytically).
 */

#include <gtest/gtest.h>

#include "microsim/ab_test.hh"
#include "microsim/service_spec.hh"
#include "util/logging.hh"
#include "workload/request_factory.hh"

namespace accel::microsim {
namespace {

/** Spec-path construction for the common (cfg, dev, work, seed) shape. */
ServiceSpec
simSpec(const ServiceConfig &cfg, const AcceleratorConfig &dev,
        const WorkloadSpec &work, std::uint64_t seed)
{
    return ServiceSpec()
        .service(cfg)
        .accelerator(dev)
        .workload(work)
        .seed(seed);
}

using model::ThreadingDesign;

constexpr WorkTag kIoTag = 0;
constexpr WorkTag kAppTag = 1;
constexpr WorkTag kSerTag = 2;
constexpr WorkTag kCryptoTag = 3;

WorkloadSpec
taggedWorkload()
{
    WorkloadSpec w;
    w.nonKernelCyclesMean = 6000;
    w.nonKernelCv = 0.0;
    w.segmentTemplate = {{3.0, kIoTag}, {2.0, kAppTag}, {1.0, kSerTag}};
    w.kernelsPerRequest = 1;
    w.kernelTag = kCryptoTag;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{500, 501, 1.0}});
    w.cyclesPerByte = 2.0; // ~1000-cycle kernel
    return w;
}

ServiceConfig
config()
{
    ServiceConfig cfg;
    cfg.cores = 1;
    cfg.threads = 1;
    cfg.design = ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    cfg.offloadSetupCycles = 25;
    return cfg;
}

TEST(TaggedSegments, SegmentSharesRecoveredInMetrics)
{
    ServiceConfig cfg = config();
    cfg.accelerated = false;
    ServiceSim sim(simSpec(cfg, AcceleratorConfig{}, taggedWorkload(), 5));
    ServiceMetrics m = sim.run(0.05, 0.01);

    double io = m.coreCyclesByTag.at(kIoTag);
    double app = m.coreCyclesByTag.at(kAppTag);
    double ser = m.coreCyclesByTag.at(kSerTag);
    EXPECT_NEAR(io / app, 1.5, 0.02);
    EXPECT_NEAR(app / ser, 2.0, 0.03);
    // Unaccelerated: the kernel runs on the host under its own tag.
    EXPECT_NEAR(m.coreCyclesByTag.at(kCryptoTag) /
                    static_cast<double>(m.requestsCompleted),
                1001, 15);
}

TEST(TaggedSegments, OffloadMovesKernelTagToOverhead)
{
    AcceleratorConfig dev;
    dev.speedupFactor = 8;
    dev.fixedLatencyCycles = 40;
    ServiceSim sim(simSpec(config(), dev, taggedWorkload(), 5));
    ServiceMetrics m = sim.run(0.05, 0.01);
    // The kernel's host cycles vanish; only o0 remains, under the
    // overhead tag.
    EXPECT_EQ(m.coreCyclesByTag.count(kCryptoTag), 0u);
    EXPECT_NEAR(m.coreCyclesByTag.at(kOverheadWorkTag) /
                    static_cast<double>(m.offloadsIssued),
                25, 2);
}

TEST(TaggedSegments, ThroughputUnchangedByTagging)
{
    // Tagging must be accounting-only: same totals as the untagged
    // blob workload with identical cycles.
    WorkloadSpec tagged = taggedWorkload();
    WorkloadSpec blob = taggedWorkload();
    blob.segmentTemplate.clear();
    ServiceConfig cfg = config();
    cfg.accelerated = false;
    double q_tagged =
        ServiceSim(simSpec(cfg, AcceleratorConfig{}, tagged, 6)).run(0.05).qps();
    double q_blob =
        ServiceSim(simSpec(cfg, AcceleratorConfig{}, blob, 6)).run(0.05).qps();
    EXPECT_NEAR(q_tagged, q_blob, q_blob * 0.01);
}

TEST(TaggedSegments, SimulatedFig16MatchesAnalytic)
{
    // Cache1 AES-NI before/after, measured: tag the non-kernel work by
    // functionality shares (secure I/O share minus the encryption
    // kernel), offload the encryption kernel, and compare the freed
    // fraction with the analytic 12.8%-of-cycles figure.
    workload::CaseStudy cs = workload::aesNiCaseStudy();
    WorkloadSpec w = cs.experiment.workload;
    // Non-kernel composition from the Cache1 profile (Fig. 9), with
    // encryption (16.6 of the 38-point secure-I/O share) carved out.
    w.segmentTemplate = {
        {38.0 - 16.6, kIoTag}, {20.0, kAppTag}, {25.4, kSerTag}};
    w.kernelTag = kCryptoTag;

    AbExperiment e = cs.experiment;
    e.workload = w;
    e.measureSeconds = 0.2;
    AbResult r = runAbTest(e);

    auto perReq = [](const ServiceMetrics &m, WorkTag tag) {
        auto it = m.coreCyclesByTag.find(tag);
        double cycles = it == m.coreCyclesByTag.end() ? 0 : it->second;
        return cycles / static_cast<double>(m.requestsCompleted);
    };
    // Core-occupied time: busy work plus Sync's held-idle wait (the
    // core is unavailable either way).
    double base_total =
        (r.baseline.coreBusyCycles + r.baseline.coreHeldIdleCycles) /
        static_cast<double>(r.baseline.requestsCompleted);
    double treat_total =
        (r.treatment.coreBusyCycles + r.treatment.coreHeldIdleCycles) /
        static_cast<double>(r.treatment.requestsCompleted);
    double freed_pct = (base_total - treat_total) / base_total * 100.0;
    // Analytic Fig. 16: ~12.8% of cycles freed (we carry ~0.3% extra
    // unmodeled driver slop).
    EXPECT_NEAR(freed_pct, 12.4, 1.0);

    // Non-target functionalities keep their absolute per-request cost.
    EXPECT_NEAR(perReq(r.treatment, kAppTag),
                perReq(r.baseline, kAppTag),
                perReq(r.baseline, kAppTag) * 0.02);
    // The encryption kernel's host cycles disappear from the treatment.
    EXPECT_GT(perReq(r.baseline, kCryptoTag), 0);
    EXPECT_EQ(perReq(r.treatment, kCryptoTag), 0);
}

TEST(TaggedSegments, ValidationRejectsBadTemplates)
{
    WorkloadSpec w = taggedWorkload();
    w.segmentTemplate = {{0.0, kIoTag}};
    EXPECT_THROW(w.validate(), FatalError);
    w = taggedWorkload();
    w.segmentTemplate = {{1.0, kIoTag}};
    w.nonKernelCyclesMean = 0;
    EXPECT_THROW(w.validate(), FatalError);
}

} // namespace
} // namespace accel::microsim

/**
 * @file
 * Tests for the replicated remote-accelerator tier: trivial-tier
 * bit-compatibility, per-replica fault-plan independence, hedge-race
 * settlement, the ejection/readmission state machine, dispatch
 * policies, and config parsing/validation.
 */

#include "microsim/tier.hh"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "config/config.hh"
#include "faults/fault_plan.hh"
#include "microsim/service_sim.hh"
#include "microsim/service_spec.hh"
#include "util/logging.hh"

namespace accel::microsim {
namespace {

AcceleratorConfig
device(std::shared_ptr<const faults::FaultPlan> plan = nullptr)
{
    AcceleratorConfig dev;
    dev.speedupFactor = 4;
    dev.fixedLatencyCycles = 50;
    dev.latencyCyclesPerByte = 0.1;
    dev.faultPlan = std::move(plan);
    return dev;
}

std::shared_ptr<const faults::FaultPlan>
latePlan(double delayCycles, std::uint64_t seed = 11)
{
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->seed = seed;
    plan->lateProbability = 1.0;
    plan->lateDelayCycles = delayCycles;
    return plan;
}

std::shared_ptr<const faults::FaultPlan>
deadPlan(sim::Tick failAt = 0, sim::Tick recoverAt = faults::kNeverTick)
{
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->deviceFailAtTick = failAt;
    plan->deviceRecoverAtTick = recoverAt;
    return plan;
}

/** Drive @p count offloads at fixed spacing; return completion ticks
 *  indexed by offload number (0 = never completed). */
template <typename Target>
std::vector<sim::Tick>
driveOffloads(sim::EventQueue &eq, Target &target, int count,
              sim::Tick spacing = 200)
{
    std::vector<sim::Tick> completed(count, 0);
    for (int i = 0; i < count; ++i) {
        eq.schedule(i * spacing, [&, i] {
            target.offload(400.0 + i, 100.0 + i,
                           [&eq, &completed, i] {
                               completed[i] = eq.now();
                           });
        });
    }
    eq.runAll();
    return completed;
}

/** Assert @p fn throws FatalError whose message names @p field. */
template <typename Fn>
void
expectFieldNamed(Fn &&fn, const std::string &field)
{
    try {
        fn();
        FAIL() << "expected FatalError naming " << field;
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
            << "message does not name the field: " << e.what();
    }
}

TEST(AcceleratorTier, TrivialTierBitIdenticalToSingleAccelerator)
{
    // One replica, no hedging, no health tracking: the tier must take
    // the exact single-device code path — same completion ticks, same
    // device stats, even under an active fault plan (same draws).
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->seed = 7;
    plan->dropProbability = 0.2;
    plan->lateProbability = 0.3;
    plan->lateDelayCycles = 120;

    sim::EventQueue eqSingle;
    Accelerator single(eqSingle, device(plan));
    auto singleTicks = driveOffloads(eqSingle, single, 64);

    sim::EventQueue eqTier;
    AcceleratorTier tier(eqTier, device(plan), TierConfig{});
    ASSERT_TRUE(TierConfig{}.trivial());
    auto tierTicks = driveOffloads(eqTier, tier, 64);

    EXPECT_EQ(singleTicks, tierTicks);

    const AcceleratorStats &a = single.stats();
    AcceleratorStats b = tier.aggregateDeviceStats();
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_EQ(a.queueWaitCycles.mean(), b.queueWaitCycles.mean());
    EXPECT_EQ(a.serviceCycles.mean(), b.serviceCycles.mean());
    EXPECT_EQ(a.droppedResponses, b.droppedResponses);
    EXPECT_EQ(a.lateResponses, b.lateResponses);

    // The trivial tier never books tier-level activity.
    EXPECT_EQ(tier.stats().offloads, 0u);
    EXPECT_EQ(tier.stats().hedgesIssued, 0u);
    EXPECT_EQ(eqTier.activeTimers(), 0u);
}

TEST(AcceleratorTier, PerReplicaFaultPlansAreIndependent)
{
    // A fault plan on replica 1 must not perturb offloads served by
    // replica 0 in any way: their completion ticks are bit-identical
    // to a run where replica 1 is healthy.
    auto run = [](bool faultReplica1) {
        TierConfig tier;
        tier.replicas = 2;
        tier.policy = DispatchPolicy::RoundRobin;
        tier.replicaFaultPlans = {nullptr,
                                  faultReplica1 ? latePlan(5000)
                                                : nullptr};
        sim::EventQueue eq;
        AcceleratorTier t(eq, device(), tier);
        return driveOffloads(eq, t, 32, /*spacing=*/1000);
    };
    auto faulty = run(true);
    auto healthy = run(false);

    // Round-robin alternates r0, r1, r0, ... — even offloads hit the
    // untouched replica 0.
    for (size_t i = 0; i < faulty.size(); i += 2)
        EXPECT_EQ(faulty[i], healthy[i]) << "offload " << i;
    // And the plan really bites: every replica-1 offload is late.
    for (size_t i = 1; i < faulty.size(); i += 2)
        EXPECT_EQ(faulty[i], healthy[i] + 5000) << "offload " << i;
}

TEST(AcceleratorTier, SharedTemplatePlanIsReseededPerReplica)
{
    // A device-template plan shared across replicas must not fail in
    // lockstep: the same offload slot on different replicas gets
    // independent draws.
    TierConfig tier;
    tier.replicas = 2;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->seed = 5;
    plan->dropProbability = 0.5;

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(plan), tier);
    auto ticks = driveOffloads(eq, t, 64, /*spacing=*/1000);

    // With lockstep draws, offloads 2k and 2k+1 (slot k on r0 and r1)
    // would drop in identical patterns; independence makes at least one
    // pair diverge (p < 1e-9 for 32 pairs if independent).
    bool diverged = false;
    for (size_t i = 0; i + 1 < ticks.size(); i += 2)
        diverged = diverged || ((ticks[i] == 0) != (ticks[i + 1] == 0));
    EXPECT_TRUE(diverged) << "replica fault draws moved in lockstep";
}

TEST(AcceleratorTier, HedgeWinSettlesAndCountsDuplicate)
{
    // Slow primary, healthy hedge target: the hedge completes first
    // and wins; the primary's eventual completion is a duplicate whose
    // service cycles are charged as wasted work.
    TierConfig tier;
    tier.replicas = 2;
    tier.hedge.enabled = true;
    tier.hedge.delayCycles = 100;
    tier.replicaFaultPlans = {latePlan(10000), nullptr};

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    t.offload(400, 100, [&] { ++completions; });
    eq.runAll();

    EXPECT_EQ(completions, 1); // onComplete fires exactly once
    const TierStats &s = t.stats();
    EXPECT_EQ(s.offloads, 1u);
    EXPECT_EQ(s.hedgesIssued, 1u);
    EXPECT_EQ(s.hedgeWins, 1u);
    EXPECT_EQ(s.hedgeLosses, 0u);
    EXPECT_EQ(s.duplicateCompletions, 1u);
    EXPECT_DOUBLE_EQ(s.wastedServiceCycles, 400.0 / 4.0);
    EXPECT_DOUBLE_EQ(s.usefulServiceCycles, 400.0 / 4.0);
    EXPECT_EQ(s.replicas[0].duplicates, 1u);
    EXPECT_EQ(s.replicas[1].wins, 1u);
    EXPECT_EQ(eq.activeTimers(), 0u);
}

TEST(AcceleratorTier, PrimaryWinAfterHedgeCountsHedgeLoss)
{
    // Primary is slower than the hedge delay but faster than the
    // hedged replica: the primary settles, the hedge arm is the loser.
    TierConfig tier;
    tier.replicas = 2;
    tier.hedge.enabled = true;
    tier.hedge.delayCycles = 100;
    tier.replicaFaultPlans = {latePlan(300), latePlan(10000)};

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    t.offload(400, 100, [&] { ++completions; });
    eq.runAll();

    EXPECT_EQ(completions, 1);
    const TierStats &s = t.stats();
    EXPECT_EQ(s.hedgesIssued, 1u);
    EXPECT_EQ(s.hedgeWins, 0u);
    EXPECT_EQ(s.hedgeLosses, 1u);
    EXPECT_EQ(s.duplicateCompletions, 1u);
    EXPECT_EQ(s.replicas[0].wins, 1u);
    EXPECT_EQ(s.replicas[1].duplicates, 1u);
}

TEST(AcceleratorTier, FastPrimaryCancelsHedgeTimer)
{
    // A completion before the hedge delay must cancel the hedge timer:
    // no duplicate is ever issued and no timer lingers in the queue.
    TierConfig tier;
    tier.replicas = 2;
    tier.hedge.enabled = true;
    tier.hedge.delayCycles = 100000;

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    t.offload(400, 100, [&] { ++completions; });
    eq.runAll();

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(t.stats().hedgesIssued, 0u);
    EXPECT_EQ(t.stats().duplicateCompletions, 0u);
    EXPECT_DOUBLE_EQ(t.stats().wastedServiceCycles, 0.0);
    EXPECT_EQ(eq.activeTimers(), 0u);
    // 60 transfer + 100 service; the cancelled hedge slot at 100000
    // drains silently and never becomes the clock's resting point.
    EXPECT_EQ(eq.now(), 160u);
}

TEST(AcceleratorTier, EjectionReadmissionLifecycle)
{
    // Replica 1 is hard-failed from tick 0 and recovers at 12000.
    // Expected walk: two watchdog failures eject it; the readmit timer
    // offers a probe; the probe fails against the still-dead device and
    // re-ejects; after recovery the next probe succeeds and readmits.
    TierConfig tier;
    tier.replicas = 2;
    tier.policy = DispatchPolicy::RoundRobin;
    tier.healthTimeoutCycles = 1000;
    tier.ejectAfterFailures = 2;
    tier.healthWindow = 16;
    tier.readmitAfterCycles = 5000;
    tier.replicaFaultPlans = {nullptr, deadPlan(0, 12000)};

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    auto issue = [&](sim::Tick when, int n) {
        eq.schedule(when, [&t, &completions, n] {
            for (int i = 0; i < n; ++i)
                t.offload(400, 100, [&completions] { ++completions; });
        });
    };

    issue(0, 2);    // r0 + r1; r1 watchdog at 1000 -> failure 1
    issue(2000, 2); // r1 watchdog at 3000 -> failure 2 -> ejected
    eq.runUntil(4000);
    EXPECT_TRUE(t.replicaEjected(1));
    EXPECT_EQ(t.stats().ejections, 1u);
    EXPECT_EQ(t.stats().watchdogExpiries, 2u);

    // Readmit timer (3000 + 5000 = 8000) flips r1 to Probing; the next
    // offload becomes its probe and fails against the dead device.
    issue(9000, 1);
    eq.runUntil(11000);
    EXPECT_EQ(t.stats().readmissionProbes, 1u);
    EXPECT_EQ(t.stats().readmissions, 0u);
    EXPECT_EQ(t.stats().ejections, 2u) << "failed probe must re-eject";
    EXPECT_TRUE(t.replicaEjected(1));

    // Device recovers at 12000; readmit timer (10000 + 5000 = 15000)
    // offers another probe, which now succeeds.
    issue(16000, 1);
    eq.runAll();
    EXPECT_EQ(t.stats().readmissionProbes, 2u);
    EXPECT_EQ(t.stats().readmissions, 1u);
    EXPECT_FALSE(t.replicaEjected(1));
    EXPECT_EQ(t.stats().replicas[1].readmissions, 1u);

    // Failover kept every offload alive: nothing was lost to the dead
    // replica from the caller's point of view.
    EXPECT_EQ(completions, 6);
    EXPECT_EQ(t.stats().failovers, 3u);
}

TEST(AcceleratorTier, LateCompletionDoesNotRepairHealth)
{
    // A brown-out replica whose answers limp in after the watchdog must
    // still be ejected — late completions count as wasted work, not as
    // successes.
    TierConfig tier;
    tier.replicas = 2;
    tier.healthTimeoutCycles = 1000;
    tier.ejectAfterFailures = 2;
    tier.readmitAfterCycles = 1e6;
    tier.replicaFaultPlans = {nullptr, latePlan(4000)};

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    for (int i = 0; i < 2; ++i) {
        eq.schedule(i * 2000, [&] {
            t.offload(400, 100, [&completions] { ++completions; });
            t.offload(400, 100, [&completions] { ++completions; });
        });
    }
    eq.runUntil(20000);

    EXPECT_TRUE(t.replicaEjected(1));
    EXPECT_EQ(t.stats().watchdogExpiries, 2u);
    // The late answers did arrive — after settlement via failover — and
    // were booked as duplicates.
    EXPECT_EQ(t.stats().duplicateCompletions, 2u);
    EXPECT_EQ(completions, 4);
}

TEST(AcceleratorTier, LeastOutstandingPicksIdleReplica)
{
    TierConfig tier;
    tier.replicas = 2;
    tier.policy = DispatchPolicy::LeastOutstanding;

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    // Same tick, no completions yet: ties keep the lowest index, then
    // the load-balancing kicks in.
    t.offload(400, 100, [] {});
    EXPECT_EQ(t.outstanding(0), 1u);
    EXPECT_EQ(t.outstanding(1), 0u);
    t.offload(400, 100, [] {});
    EXPECT_EQ(t.outstanding(1), 1u);
    t.offload(400, 100, [] {});
    EXPECT_EQ(t.outstanding(0), 2u);
    EXPECT_EQ(t.outstanding(1), 1u);
    eq.runAll();
    EXPECT_EQ(t.outstanding(0), 0u);
    EXPECT_EQ(t.outstanding(1), 0u);
}

TEST(AcceleratorTier, PowerOfTwoChoicesReplaysDeterministically)
{
    auto run = [] {
        TierConfig tier;
        tier.replicas = 4;
        tier.policy = DispatchPolicy::PowerOfTwoChoices;
        tier.seed = 42;
        sim::EventQueue eq;
        AcceleratorTier t(eq, device(), tier);
        return driveOffloads(eq, t, 64, /*spacing=*/70);
    };
    EXPECT_EQ(run(), run());
}

TEST(AcceleratorTier, ValidationNamesTheField)
{
    expectFieldNamed(
        [] {
            TierConfig t;
            t.replicas = 0;
            t.validate();
        },
        "replicas");
    expectFieldNamed(
        [] {
            TierConfig t;
            t.replicas = 2;
            t.hedge.enabled = true;
            t.hedge.delayCycles = 0;
            t.validate();
        },
        "delayCycles");
    expectFieldNamed(
        [] {
            TierConfig t;
            t.hedge.delayCycles = 10; // set but not enabled
            t.validate();
        },
        "delayCycles");
    expectFieldNamed(
        [] {
            TierConfig t;
            t.ejectAfterFailures = 20;
            t.healthWindow = 16;
            t.validate();
        },
        "ejectAfterFailures");
    expectFieldNamed(
        [] {
            TierConfig t;
            t.replicas = 1; // nowhere to hedge to
            t.hedge.enabled = true;
            t.hedge.delayCycles = 10;
            t.validate();
        },
        "hedge");
    expectFieldNamed(
        [] {
            TierConfig t;
            t.readmitAfterCycles = 0;
            t.validate();
        },
        "readmitAfterCycles");
    EXPECT_THROW(dispatchPolicyFromString("fastest"), FatalError);
}

TEST(AcceleratorTier, HedgedSyncDesignRejected)
{
    // The Sync design blocks its only driver on the offload — a hedge
    // cannot help it, so the combination is a config error, not a
    // silent no-op.
    TierConfig tier;
    tier.replicas = 2;
    tier.hedge.enabled = true;
    tier.hedge.delayCycles = 1000;

    ServiceConfig svc;
    svc.cores = 1;
    svc.threads = 1;
    svc.design = model::ThreadingDesign::Sync;
    svc.clockGHz = 1.0;

    WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{500, 501, 1.0}});
    w.cyclesPerByte = 2.0;

    // The check now lives in ServiceSpec::validate so graph assembly
    // can report every offending node at once; construction still
    // throws because it validates the spec.
    ServiceSpec spec = ServiceSpec("hedged-sync")
                           .service(svc)
                           .accelerator(device())
                           .tier(tier)
                           .workload(w)
                           .seed(1);
    EXPECT_EQ(spec.errors().size(), 1u);
    EXPECT_NE(spec.errors().front().find("hedge"), std::string::npos);
    EXPECT_THROW(spec.validate(), FatalError);
    EXPECT_THROW(ServiceSim{spec}, FatalError);
    spec.service().design = model::ThreadingDesign::AsyncSameThread;
    EXPECT_TRUE(spec.errors().empty());
    EXPECT_NO_THROW(ServiceSim{spec});
}

TEST(AcceleratorTier, TierFromConfigRoundTrip)
{
    Config cfg = Config::fromString(
        "[svc]\n"
        "tier_replicas = 4\n"
        "tier_policy = p2c\n"
        "tier_hedge_delay = 5500\n"
        "tier_health_timeout = 20000\n"
        "tier_eject_after = 2\n"
        "tier_health_window = 8\n"
        "tier_readmit_after = 2e6\n"
        "tier_max_failovers = 1\n"
        "tier_seed = 9\n"
        "fault_r2_drop_p = 0.5\n"
        "fault_r2_seed = 13\n");
    TierConfig t = tierFromConfig(cfg, "svc");
    EXPECT_EQ(t.replicas, 4u);
    EXPECT_EQ(t.policy, DispatchPolicy::PowerOfTwoChoices);
    EXPECT_TRUE(t.hedge.enabled);
    EXPECT_DOUBLE_EQ(t.hedge.delayCycles, 5500);
    EXPECT_DOUBLE_EQ(t.healthTimeoutCycles, 20000);
    EXPECT_EQ(t.ejectAfterFailures, 2u);
    EXPECT_EQ(t.healthWindow, 8u);
    EXPECT_DOUBLE_EQ(t.readmitAfterCycles, 2e6);
    EXPECT_EQ(t.maxFailovers, 1u);
    EXPECT_EQ(t.seed, 9u);
    ASSERT_EQ(t.replicaFaultPlans.size(), 4u);
    EXPECT_EQ(t.replicaFaultPlans[0], nullptr);
    EXPECT_EQ(t.replicaFaultPlans[1], nullptr);
    ASSERT_NE(t.replicaFaultPlans[2], nullptr);
    EXPECT_DOUBLE_EQ(t.replicaFaultPlans[2]->dropProbability, 0.5);
    EXPECT_EQ(t.replicaFaultPlans[2]->seed, 13u);
    EXPECT_EQ(t.replicaFaultPlans[3], nullptr);
}

TEST(AcceleratorTier, TierFromConfigDefaultsToTrivial)
{
    Config cfg = Config::fromString("[svc]\nC = 1e9\n");
    TierConfig t = tierFromConfig(cfg, "svc");
    EXPECT_TRUE(t.trivial());
    EXPECT_TRUE(t.replicaFaultPlans.empty());
    EXPECT_THROW(
        tierFromConfig(
            Config::fromString("[s]\ntier_policy = fastest\n"), "s"),
        FatalError);
}

// --------------------------------------------------------------------
// Dynamic capacity: setActiveReplicas / drain / standby lifecycle
// --------------------------------------------------------------------

TEST(AcceleratorTier, SetActiveReplicasValidation)
{
    sim::EventQueue eq;
    TierConfig two;
    two.replicas = 2;
    AcceleratorTier t(eq, device(), two);
    EXPECT_THROW(t.setActiveReplicas(0), FatalError);
    EXPECT_THROW(t.setActiveReplicas(3), FatalError);

    AcceleratorTier trivial(eq, device(), TierConfig{});
    EXPECT_THROW(trivial.setActiveReplicas(1), FatalError);
}

TEST(AcceleratorTier, ScaleDownDrainsInFlightOffloads)
{
    // The victim has an offload in flight when it is descheduled: it
    // must stay provisioned (Draining) until the completion lands,
    // deliver that completion, then park in Standby — and never take a
    // new dispatch while draining.
    TierConfig tier;
    tier.replicas = 2;
    tier.policy = DispatchPolicy::LeastOutstanding;

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    t.offload(400, 100, [&] { ++completions; }); // -> r0
    t.offload(400, 100, [&] { ++completions; }); // -> r1

    eq.schedule(50, [&] { // both offloads complete at tick 160
        t.setActiveReplicas(1);
        EXPECT_TRUE(t.replicaDraining(1));
        EXPECT_FALSE(t.replicaStandby(1));
        EXPECT_EQ(t.provisionedReplicaCount(), 2u);
        EXPECT_EQ(t.activeReplicaCount(), 1u);
        // New work while r1 drains must route to r0 despite its load.
        t.offload(400, 100, [&] { ++completions; });
        EXPECT_EQ(t.outstanding(0), 2u);
        EXPECT_EQ(t.outstanding(1), 1u);
    });
    eq.runAll();

    EXPECT_EQ(completions, 3); // the drained replica still answered
    EXPECT_FALSE(t.replicaDraining(1));
    EXPECT_TRUE(t.replicaStandby(1));
    EXPECT_EQ(t.provisionedReplicaCount(), 1u);
    EXPECT_EQ(t.stats().drainsStarted, 1u);
    EXPECT_EQ(t.stats().drainsCompleted, 1u);
    EXPECT_EQ(eq.activeTimers(), 0u);
}

TEST(AcceleratorTier, ScaleDownSettlesRacingHedge)
{
    // A hedge lands on the victim while it drains: the hedge attempt
    // must settle (and may win) before the replica parks; the drain
    // completes cleanly with no timers left behind.
    TierConfig tier;
    tier.replicas = 2;
    tier.hedge.enabled = true;
    tier.hedge.delayCycles = 100;
    tier.replicaFaultPlans = {latePlan(10000), nullptr};

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    t.offload(400, 100, [&] { ++completions; }); // slow primary on r0
    // t=100: hedge issues to r1. t=150: r1 becomes the scale-down
    // victim with the hedge attempt still in flight.
    eq.schedule(150, [&] {
        t.setActiveReplicas(1);
        EXPECT_TRUE(t.replicaDraining(1));
        EXPECT_EQ(t.outstanding(1), 1u);
    });
    eq.runAll();

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(t.stats().hedgesIssued, 1u);
    EXPECT_EQ(t.stats().hedgeWins, 1u); // r0's answer limped in late
    EXPECT_TRUE(t.replicaStandby(1));
    EXPECT_EQ(t.stats().drainsCompleted, 1u);
    EXPECT_EQ(eq.activeTimers(), 0u);
}

TEST(AcceleratorTier, ScaleDownWinsRaceWithPendingReadmission)
{
    // r1 is ejected with its readmission timer pending when the
    // autoscaler drains it. The stale timer must not resurrect the
    // parked replica as Probing — scaled-down capacity stays down.
    TierConfig tier;
    tier.replicas = 2;
    tier.policy = DispatchPolicy::RoundRobin;
    tier.healthTimeoutCycles = 1000;
    tier.ejectAfterFailures = 2;
    tier.readmitAfterCycles = 5000;
    tier.replicaFaultPlans = {nullptr, deadPlan(0)};

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    auto issue = [&](sim::Tick when, int n) {
        eq.schedule(when, [&t, &completions, n] {
            for (int i = 0; i < n; ++i)
                t.offload(400, 100, [&completions] { ++completions; });
        });
    };
    issue(0, 2);    // r1 watchdog failure 1 at tick 1000
    issue(2000, 2); // failure 2 at 3000 -> ejected, readmit at 8000
    eq.schedule(4000, [&] {
        ASSERT_TRUE(t.replicaEjected(1));
        t.setActiveReplicas(1); // ejected victim drains instantly
        EXPECT_TRUE(t.replicaStandby(1));
    });
    issue(9000, 1); // after the stale readmit timer fired
    eq.runAll();

    // The readmit timer found r1 no longer Ejected and left it parked:
    // no probe was ever offered, no readmission happened.
    EXPECT_TRUE(t.replicaStandby(1));
    EXPECT_EQ(t.stats().readmissionProbes, 0u);
    EXPECT_EQ(t.stats().readmissions, 0u);
    EXPECT_EQ(t.stats().drainsCompleted, 1u);
    EXPECT_EQ(completions, 5); // failover kept every offload alive
}

TEST(AcceleratorTier, ScaleUpReactivatesStandbyWithFreshHealth)
{
    // Park r1 via a drain, then grow again: the replica returns as a
    // dispatch candidate with reset health, and the round trip is
    // visible in the activation/drain counters.
    TierConfig tier;
    tier.replicas = 2;
    tier.policy = DispatchPolicy::LeastOutstanding;

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    t.setActiveReplicas(1);
    EXPECT_TRUE(t.replicaStandby(1));
    EXPECT_EQ(t.activeReplicaCount(), 1u);
    t.setActiveReplicas(2);
    EXPECT_FALSE(t.replicaStandby(1));
    EXPECT_EQ(t.activeReplicaCount(), 2u);
    EXPECT_EQ(t.stats().activations, 1u);

    int completions = 0;
    t.offload(400, 100, [&] { ++completions; });
    t.offload(400, 100, [&] { ++completions; });
    EXPECT_EQ(t.outstanding(1), 1u); // reactivated and dispatchable
    eq.runAll();
    EXPECT_EQ(completions, 2);
}

TEST(AcceleratorTier, GrowReactivatesDrainingVictimInPlace)
{
    // Scale down with work in flight, then scale back up before the
    // drain settles: the draining replica is reactivated where it
    // stands (it is warm), not parked and re-woken.
    TierConfig tier;
    tier.replicas = 2;
    tier.policy = DispatchPolicy::LeastOutstanding;

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    int completions = 0;
    t.offload(400, 100, [&] { ++completions; });
    t.offload(400, 100, [&] { ++completions; });
    eq.schedule(50, [&] {
        t.setActiveReplicas(1);
        EXPECT_TRUE(t.replicaDraining(1));
        t.setActiveReplicas(2);
        EXPECT_FALSE(t.replicaDraining(1));
        EXPECT_FALSE(t.replicaStandby(1));
    });
    eq.runAll();
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(t.stats().drainsStarted, 1u);
    EXPECT_EQ(t.stats().drainsCompleted, 0u); // reactivated mid-drain
    EXPECT_EQ(t.stats().activations, 1u);
}

TEST(AcceleratorTier, ProvisionedReplicaCyclesBillsDrainsNotStandby)
{
    // 2 replicas for 1000 cycles, then r1 parks (idle, instant drain):
    // the integral is 2*1000 + 1*rest — standby is free, and the
    // accounting is finalized by snapshot() at read time.
    TierConfig tier;
    tier.replicas = 2;

    sim::EventQueue eq;
    AcceleratorTier t(eq, device(), tier);
    eq.schedule(1000, [&] { t.setActiveReplicas(1); });
    eq.schedule(3000, [] {});
    eq.runAll();
    EXPECT_DOUBLE_EQ(t.snapshot().provisionedReplicaCycles,
                     2.0 * 1000 + 1.0 * 2000);

    // resetStats restarts the integral at the reset tick.
    t.resetStats();
    eq.schedule(5000, [] {});
    eq.runAll();
    EXPECT_DOUBLE_EQ(t.snapshot().provisionedReplicaCycles, 1.0 * 2000);
}

} // namespace
} // namespace accel::microsim

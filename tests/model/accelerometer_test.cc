/** @file Equation-level and property tests of the Accelerometer model. */

#include "model/accelerometer.hh"

#include <cctype>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

Params
baseParams()
{
    Params p;
    p.hostCycles = 1e9;
    p.alpha = 0.3;
    p.offloads = 1e5;
    p.setupCycles = 50;
    p.queueCycles = 20;
    p.interfaceCycles = 200;
    p.threadSwitchCycles = 1000;
    p.accelFactor = 8;
    return p;
}

/** Hand-evaluate eq. (1). */
double
eq1(const Params &p)
{
    return 1.0 / ((1 - p.alpha) + p.alpha / p.accelFactor +
                  p.offloads / p.hostCycles *
                      (p.setupCycles + p.interfaceCycles + p.queueCycles));
}

TEST(Equations, SyncMatchesEq1)
{
    Params p = baseParams();
    Accelerometer m(p);
    EXPECT_NEAR(m.speedup(ThreadingDesign::Sync), eq1(p), 1e-12);
    EXPECT_NEAR(m.latencyReduction(ThreadingDesign::Sync), eq1(p), 1e-12);
}

TEST(Equations, SyncOSMatchesEq3And5)
{
    Params p = baseParams();
    Accelerometer m(p);
    double ovh = p.setupCycles + p.interfaceCycles + p.queueCycles;
    double eq3 = 1.0 / ((1 - p.alpha) + p.offloads / p.hostCycles *
                                            (ovh + 2 * p.threadSwitchCycles));
    double eq5 = 1.0 /
        ((1 - p.alpha) + p.alpha / p.accelFactor +
         p.offloads / p.hostCycles * (ovh + p.threadSwitchCycles));
    EXPECT_NEAR(m.speedup(ThreadingDesign::SyncOS), eq3, 1e-12);
    EXPECT_NEAR(m.latencyReduction(ThreadingDesign::SyncOS), eq5, 1e-12);
}

TEST(Equations, AsyncSameThreadMatchesEq6And8)
{
    Params p = baseParams();
    Accelerometer m(p);
    double ovh = p.setupCycles + p.interfaceCycles + p.queueCycles;
    double eq6 = 1.0 / ((1 - p.alpha) + p.offloads / p.hostCycles * ovh);
    double eq8 = 1.0 / ((1 - p.alpha) + p.alpha / p.accelFactor +
                        p.offloads / p.hostCycles * ovh);
    EXPECT_NEAR(m.speedup(ThreadingDesign::AsyncSameThread), eq6, 1e-12);
    EXPECT_NEAR(m.latencyReduction(ThreadingDesign::AsyncSameThread), eq8,
                1e-12);
}

TEST(Equations, AsyncDistinctThreadSingleSwitch)
{
    Params p = baseParams();
    Accelerometer m(p);
    double ovh = p.setupCycles + p.interfaceCycles + p.queueCycles;
    double speedup = 1.0 /
        ((1 - p.alpha) +
         p.offloads / p.hostCycles * (ovh + p.threadSwitchCycles));
    EXPECT_NEAR(m.speedup(ThreadingDesign::AsyncDistinctThread), speedup,
                1e-12);
    // Latency matches eq. (5).
    EXPECT_NEAR(m.latencyReduction(ThreadingDesign::AsyncDistinctThread),
                m.latencyReduction(ThreadingDesign::SyncOS), 1e-12);
}

TEST(Equations, AsyncNoResponseSpeedupMatchesEq6)
{
    Params p = baseParams();
    Accelerometer m(p);
    EXPECT_NEAR(m.speedup(ThreadingDesign::AsyncNoResponse),
                m.speedup(ThreadingDesign::AsyncSameThread), 1e-12);
}

TEST(Equations, AsyncNoResponseRemoteLatencyExcludesAccelerator)
{
    Params p = baseParams();
    p.strategy = Strategy::OffChip;
    Accelerometer off_chip(p);
    p.strategy = Strategy::Remote;
    Accelerometer remote(p);
    // Off-chip: accelerator time on the request path (eq. 8); remote:
    // it moves to the end-to-end path (eq. 6).
    EXPECT_LT(off_chip.latencyReduction(ThreadingDesign::AsyncNoResponse),
              remote.latencyReduction(ThreadingDesign::AsyncNoResponse));
    EXPECT_NEAR(remote.latencyReduction(ThreadingDesign::AsyncNoResponse),
                remote.speedup(ThreadingDesign::AsyncNoResponse), 1e-12);
}

TEST(Equations, PartialOffloadKeepsResidualOnHost)
{
    Params p = baseParams();
    p.offloadedFraction = 0.6;
    Accelerometer m(p);
    double expected = 1.0 /
        ((1 - p.alpha) + p.alpha * 0.4 + p.alpha * 0.6 / p.accelFactor +
         p.offloads / p.hostCycles * p.dispatchCycles());
    EXPECT_NEAR(m.speedup(ThreadingDesign::Sync), expected, 1e-12);
}

TEST(Properties, NoOverheadInfiniteAcceleratorHitsAmdahl)
{
    Params p = baseParams();
    p.setupCycles = p.queueCycles = p.interfaceCycles = 0;
    p.threadSwitchCycles = 0;
    p.accelFactor = 1e12;
    Accelerometer m(p);
    for (ThreadingDesign d :
         {ThreadingDesign::Sync, ThreadingDesign::SyncOS,
          ThreadingDesign::AsyncSameThread}) {
        EXPECT_NEAR(m.speedup(d), m.idealSpeedup(), 1e-3);
    }
}

TEST(Properties, ZeroOffloadsMeansNoChange)
{
    Params p = baseParams();
    p.offloads = 0;
    p.offloadedFraction = 0;
    Accelerometer m(p);
    EXPECT_NEAR(m.speedup(ThreadingDesign::Sync), 1.0, 1e-12);
}

TEST(Properties, IdealSpeedupIsAmdahl)
{
    Params p = baseParams();
    Accelerometer m(p);
    EXPECT_NEAR(m.idealSpeedup(), 1.0 / (1.0 - 0.3), 1e-12);
    p.alpha = 1.0;
    Accelerometer full(p);
    EXPECT_TRUE(std::isinf(full.idealSpeedup()));
}

TEST(Properties, SpeedupOrderingAcrossDesigns)
{
    // With nonzero o1, async-same-thread beats distinct-thread beats
    // Sync-OS on throughput; Sync loses to async because the accelerator
    // sits on its critical path.
    Params p = baseParams();
    Accelerometer m(p);
    double sync = m.speedup(ThreadingDesign::Sync);
    double sync_os = m.speedup(ThreadingDesign::SyncOS);
    double async_same = m.speedup(ThreadingDesign::AsyncSameThread);
    double async_distinct =
        m.speedup(ThreadingDesign::AsyncDistinctThread);
    EXPECT_GT(async_same, async_distinct);
    EXPECT_GT(async_distinct, sync_os);
    EXPECT_GT(async_same, sync);
}

TEST(Properties, ProfitableMatchesSpeedupAboveOne)
{
    Params p = baseParams();
    Accelerometer m(p);
    for (ThreadingDesign d :
         {ThreadingDesign::Sync, ThreadingDesign::SyncOS,
          ThreadingDesign::AsyncSameThread}) {
        EXPECT_EQ(m.profitable(d), m.speedup(d) > 1.0);
    }
}

TEST(Properties, AcceleratedCyclesAccessorsConsistent)
{
    // speedup == C/CS and latencyReduction == C/CL by definition.
    Params p = baseParams();
    Accelerometer m(p);
    for (ThreadingDesign d :
         {ThreadingDesign::Sync, ThreadingDesign::SyncOS,
          ThreadingDesign::AsyncSameThread,
          ThreadingDesign::AsyncDistinctThread,
          ThreadingDesign::AsyncNoResponse}) {
        EXPECT_NEAR(p.hostCycles / m.acceleratedHostCycles(d),
                    m.speedup(d), 1e-12);
        EXPECT_NEAR(p.hostCycles / m.acceleratedRequestCycles(d),
                    m.latencyReduction(d), 1e-12);
    }
}

TEST(Properties, ConstructionValidates)
{
    Params p = baseParams();
    p.alpha = 2.0;
    EXPECT_THROW(Accelerometer{p}, FatalError);
}

// ---------------------------------------------------------------------
// Monotonicity sweeps (property tests over the parameter space).
// ---------------------------------------------------------------------

class MonotonicityTest
    : public testing::TestWithParam<ThreadingDesign>
{
};

TEST_P(MonotonicityTest, SpeedupNonIncreasingInInterfaceLatency)
{
    Params p = baseParams();
    double prev = std::numeric_limits<double>::infinity();
    for (double L : {0.0, 10.0, 100.0, 1000.0, 10000.0}) {
        p.interfaceCycles = L;
        Accelerometer m(p);
        double s = m.speedup(GetParam());
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

TEST_P(MonotonicityTest, SpeedupNonIncreasingInSetupCycles)
{
    Params p = baseParams();
    double prev = std::numeric_limits<double>::infinity();
    for (double o0 : {0.0, 10.0, 100.0, 1000.0}) {
        p.setupCycles = o0;
        Accelerometer m(p);
        double s = m.speedup(GetParam());
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

TEST_P(MonotonicityTest, SpeedupNonIncreasingInQueueCycles)
{
    Params p = baseParams();
    double prev = std::numeric_limits<double>::infinity();
    for (double q : {0.0, 5.0, 50.0, 500.0}) {
        p.queueCycles = q;
        Accelerometer m(p);
        double s = m.speedup(GetParam());
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

TEST_P(MonotonicityTest, SpeedupNonDecreasingInAccelFactor)
{
    Params p = baseParams();
    double prev = 0;
    for (double a : {1.0, 2.0, 4.0, 16.0, 256.0}) {
        p.accelFactor = a;
        Accelerometer m(p);
        double s = m.speedup(GetParam());
        EXPECT_GE(s, prev - 1e-12);
        prev = s;
    }
}

TEST_P(MonotonicityTest, LatencyReductionNonIncreasingInSwitchCost)
{
    Params p = baseParams();
    double prev = std::numeric_limits<double>::infinity();
    for (double o1 : {0.0, 100.0, 1000.0, 10000.0}) {
        p.threadSwitchCycles = o1;
        Accelerometer m(p);
        double s = m.latencyReduction(GetParam());
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

TEST_P(MonotonicityTest, LatencyNeverBetterThanThroughputForAsync)
{
    // For async designs the accelerator is off the throughput path but
    // on the latency path, so C/CL <= C/CS. (Sync is equal by
    // construction; Sync-OS can go either way because its throughput
    // path carries 2*o1 but its latency path only one — the paper's
    // "throughput gain at the cost of a latency slowdown" trade-off.)
    if (GetParam() == ThreadingDesign::Sync ||
        GetParam() == ThreadingDesign::SyncOS) {
        return;
    }
    Params p = baseParams();
    Accelerometer m(p);
    EXPECT_LE(m.latencyReduction(GetParam()),
              m.speedup(GetParam()) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, MonotonicityTest,
    testing::Values(ThreadingDesign::Sync, ThreadingDesign::SyncOS,
                    ThreadingDesign::AsyncSameThread,
                    ThreadingDesign::AsyncDistinctThread,
                    ThreadingDesign::AsyncNoResponse),
    [](const testing::TestParamInfo<ThreadingDesign> &info) {
        std::string name = toString(info.param);
        std::string out;
        for (char c : name)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

// ---------------------------------------------------------------------
// Per-offload profitability (eqs. 2, 4, 7).
// ---------------------------------------------------------------------

TEST(OffloadProfit, SyncBreakEvenMatchesEq2)
{
    // Cb*g*(1 - 1/A) > o0 + L + Q  =>  g* = ovh / (Cb (1 - 1/A)).
    Params p = baseParams();
    OffloadProfit profit{10.0, 1.0};
    double ovh = p.setupCycles + p.interfaceCycles + p.queueCycles;
    double expected = ovh / (10.0 * (1.0 - 1.0 / p.accelFactor));
    double g = profit.breakEvenSpeedup(ThreadingDesign::Sync, p);
    EXPECT_NEAR(g, expected, 1e-9);
    EXPECT_FALSE(profit.improvesSpeedup(g * 0.99, ThreadingDesign::Sync,
                                        p));
    EXPECT_TRUE(profit.improvesSpeedup(g * 1.01, ThreadingDesign::Sync,
                                       p));
}

TEST(OffloadProfit, SyncOSBreakEvenMatchesEq4)
{
    Params p = baseParams();
    OffloadProfit profit{10.0, 1.0};
    double ovh = p.setupCycles + p.interfaceCycles + p.queueCycles +
                 2 * p.threadSwitchCycles;
    EXPECT_NEAR(profit.breakEvenSpeedup(ThreadingDesign::SyncOS, p),
                ovh / 10.0, 1e-9);
}

TEST(OffloadProfit, AsyncBreakEvenMatchesEq7)
{
    Params p = baseParams();
    OffloadProfit profit{10.0, 1.0};
    double ovh = p.setupCycles + p.interfaceCycles + p.queueCycles;
    EXPECT_NEAR(
        profit.breakEvenSpeedup(ThreadingDesign::AsyncSameThread, p),
        ovh / 10.0, 1e-9);
}

TEST(OffloadProfit, LatencyBreakEvenIncludesAcceleratorAndSwitch)
{
    Params p = baseParams();
    OffloadProfit profit{10.0, 1.0};
    double ovh = p.setupCycles + p.interfaceCycles + p.queueCycles +
                 p.threadSwitchCycles;
    double expected = ovh / (10.0 * (1.0 - 1.0 / p.accelFactor));
    EXPECT_NEAR(profit.breakEvenLatency(ThreadingDesign::SyncOS, p),
                expected, 1e-9);
}

TEST(OffloadProfit, UnityAcceleratorNeverProfitsSync)
{
    Params p = baseParams();
    p.accelFactor = 1.0;
    OffloadProfit profit{10.0, 1.0};
    EXPECT_TRUE(std::isinf(
        profit.breakEvenSpeedup(ThreadingDesign::Sync, p)));
    EXPECT_FALSE(profit.improvesSpeedup(1e12, ThreadingDesign::Sync, p));
}

TEST(OffloadProfit, UnityAcceleratorCanProfitAsync)
{
    // A remote CPU (A = 1) still frees host cycles under async offload.
    Params p = baseParams();
    p.accelFactor = 1.0;
    OffloadProfit profit{10.0, 1.0};
    double g =
        profit.breakEvenSpeedup(ThreadingDesign::AsyncSameThread, p);
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_TRUE(
        profit.improvesSpeedup(g * 1.01, ThreadingDesign::AsyncSameThread,
                               p));
}

TEST(OffloadProfit, ZeroOverheadBreaksEvenImmediately)
{
    Params p = baseParams();
    p.setupCycles = p.queueCycles = p.interfaceCycles = 0;
    OffloadProfit profit{10.0, 1.0};
    EXPECT_DOUBLE_EQ(profit.breakEvenSpeedup(ThreadingDesign::Sync, p),
                     0.0);
}

TEST(OffloadProfit, SuperLinearKernelShrinksBreakEven)
{
    Params p = baseParams();
    OffloadProfit linear{10.0, 1.0};
    OffloadProfit quadratic{10.0, 2.0};
    EXPECT_LT(quadratic.breakEvenSpeedup(ThreadingDesign::Sync, p),
              linear.breakEvenSpeedup(ThreadingDesign::Sync, p));
}

TEST(OffloadProfit, HostKernelCyclesFollowsComplexity)
{
    OffloadProfit profit{2.0, 2.0};
    EXPECT_DOUBLE_EQ(profit.hostKernelCycles(10), 200.0);
    EXPECT_THROW(profit.hostKernelCycles(-1), FatalError);
}

} // namespace
} // namespace accel::model

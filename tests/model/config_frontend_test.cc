/** @file Tests for the config-file model front end. */

#include "model/config_frontend.hh"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

const char *kAesConfig =
    "[aes-ni]\n"
    "C = 2.0e9\n"
    "alpha = 0.165844\n"
    "n = 298951\n"
    "o0 = 10\n"
    "L = 3\n"
    "A = 6\n"
    "strategy = on-chip\n"
    "threading = sync\n";

TEST(ConfigFrontend, ParsesTable6Row)
{
    Config cfg = Config::fromString(kAesConfig);
    Params p = paramsFromConfig(cfg, "aes-ni");
    EXPECT_DOUBLE_EQ(p.hostCycles, 2.0e9);
    EXPECT_DOUBLE_EQ(p.alpha, 0.165844);
    EXPECT_DOUBLE_EQ(p.offloads, 298951);
    EXPECT_EQ(p.strategy, Strategy::OnChip);
    Accelerometer m(p);
    EXPECT_NEAR(m.speedup(ThreadingDesign::Sync) - 1.0, 0.157, 0.002);
}

TEST(ConfigFrontend, DefaultsApplied)
{
    Config cfg = Config::fromString("[x]\nC=1e9\nalpha=0.1\nn=10\n");
    Params p = paramsFromConfig(cfg, "x");
    EXPECT_DOUBLE_EQ(p.setupCycles, 0);
    EXPECT_DOUBLE_EQ(p.accelFactor, 1);
    EXPECT_DOUBLE_EQ(p.offloadedFraction, 1);
    EXPECT_EQ(p.strategy, Strategy::OffChip);
    EXPECT_EQ(threadingFromConfig(cfg, "x"), ThreadingDesign::Sync);
}

TEST(ConfigFrontend, MissingRequiredKeyThrows)
{
    Config cfg = Config::fromString("[x]\nC=1e9\nn=10\n");
    EXPECT_THROW(paramsFromConfig(cfg, "x"), FatalError);
}

TEST(ConfigFrontend, OutOfDomainValueThrows)
{
    Config cfg =
        Config::fromString("[x]\nC=1e9\nalpha=1.2\nn=10\n");
    EXPECT_THROW(paramsFromConfig(cfg, "x"), FatalError);
}

TEST(ConfigFrontend, CasesPreserveSectionOrder)
{
    Config cfg = Config::fromString(
        "[b]\nC=1e9\nalpha=0.1\nn=1\n[a]\nC=1e9\nalpha=0.2\nn=2\n");
    auto cases = casesFromConfig(cfg);
    ASSERT_EQ(cases.size(), 2u);
    EXPECT_EQ(cases[0].name, "b");
    EXPECT_EQ(cases[1].name, "a");
}

TEST(ConfigFrontend, RunConfigFileRendersReports)
{
    std::string path = testing::TempDir() + "/accel_frontend_test.ini";
    {
        std::ofstream out(path);
        out << kAesConfig;
    }
    std::string report = runConfigFile(path);
    EXPECT_NE(report.find("aes-ni"), std::string::npos);
    EXPECT_NE(report.find("15.7"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ConfigFrontend, EmptyConfigRejected)
{
    std::string path = testing::TempDir() + "/accel_empty_test.ini";
    {
        std::ofstream out(path);
        out << "# nothing here\n";
    }
    EXPECT_THROW(runConfigFile(path), FatalError);
    std::remove(path.c_str());
}


TEST(ConfigFrontend, GranularityLiteralParsed)
{
    BucketDist d = granularityFromConfig("0:64:12, 64:128:6, 128:256:2");
    EXPECT_EQ(d.bucketCount(), 3u);
    EXPECT_NEAR(d.bucket(0).mass, 0.6, 1e-9);
    EXPECT_THROW(granularityFromConfig(""), FatalError);
    EXPECT_THROW(granularityFromConfig("1:2"), FatalError);
    EXPECT_THROW(granularityFromConfig("8:4:1"), FatalError);
}

TEST(ConfigFrontend, PlannerModeDerivesNFromCdf)
{
    // Fig. 20 off-chip Sync compression, planner-style: n must come
    // out at ~9,629 of 15,008 and the speedup at ~9.1%.
    Config cfg = Config::fromString(
        "[comp]\n"
        "C = 2.3e9\nalpha = 0.15\nL = 2300\nA = 27\n"
        "threading = sync\ncb = 5.62\nn_total = 15008\n"
        "granularity_cdf = 0:64:12, 64:128:6, 128:256:8.02, "
        "256:512:14.88, 512:1024:18.7, 1024:2048:12, 2048:4096:9.5, "
        "4096:8192:8.8, 8192:16384:4.1, 16384:32768:3, 32768:65536:3\n");
    Params p = paramsFromConfig(cfg, "comp");
    EXPECT_NEAR(p.offloads, 9629, 100);
    EXPECT_NEAR(p.offloadedFraction, 0.6416, 0.005);
    Accelerometer m(p);
    EXPECT_NEAR(m.speedup(ThreadingDesign::Sync) - 1.0, 0.091, 0.003);
}

TEST(ConfigFrontend, PlannerModeBytesWeighting)
{
    Config cfg = Config::fromString(
        "[comp]\n"
        "C = 2.3e9\nalpha = 0.15\nL = 2300\nA = 27\n"
        "threading = sync\ncb = 5.62\nn_total = 15008\n"
        "weighting = bytes\n"
        "granularity_cdf = 0:64:50, 16384:65536:50\n");
    Params p = paramsFromConfig(cfg, "comp");
    // Half the offloads profit, but they carry nearly all the bytes.
    EXPECT_NEAR(p.offloads, 7504, 10);
    EXPECT_GT(p.offloadedFraction, 0.99);
}

TEST(ConfigFrontend, FaultPlanAbsentWithoutFaultKeys)
{
    Config cfg = Config::fromString(kAesConfig);
    EXPECT_EQ(faultPlanFromConfig(cfg, "aes-ni"), nullptr);
}

TEST(ConfigFrontend, FaultPlanParsesAllKeys)
{
    Config cfg = Config::fromString(
        "[x]\n"
        "fault_seed = 42\n"
        "fault_drop_p = 0.05\n"
        "fault_late_p = 0.1\n"
        "fault_late_cycles = 2500\n"
        "fault_spike_p = 0.2\n"
        "fault_spike_factor = 8\n"
        "fault_stalls = 1e6:2e6, 5e6:6e6\n"
        "fault_fail_at = 3e6\n"
        "fault_recover_at = 4e6\n");
    auto plan = faultPlanFromConfig(cfg, "x");
    ASSERT_NE(plan, nullptr);
    EXPECT_TRUE(plan->active());
    EXPECT_EQ(plan->seed, 42u);
    EXPECT_DOUBLE_EQ(plan->dropProbability, 0.05);
    EXPECT_DOUBLE_EQ(plan->lateProbability, 0.1);
    EXPECT_DOUBLE_EQ(plan->lateDelayCycles, 2500);
    EXPECT_DOUBLE_EQ(plan->transferSpikeProbability, 0.2);
    EXPECT_DOUBLE_EQ(plan->transferSpikeFactor, 8);
    ASSERT_EQ(plan->stallWindows.size(), 2u);
    EXPECT_EQ(plan->stallWindows[0].begin, 1000000);
    EXPECT_EQ(plan->stallWindows[0].end, 2000000);
    EXPECT_EQ(plan->stallWindows[1].begin, 5000000);
    EXPECT_EQ(plan->stallWindows[1].end, 6000000);
    EXPECT_EQ(plan->deviceFailAtTick, 3000000);
    EXPECT_EQ(plan->deviceRecoverAtTick, 4000000);
}

TEST(ConfigFrontend, FaultPlanSingleKeyActivates)
{
    Config cfg = Config::fromString("[x]\nfault_drop_p = 0.5\n");
    auto plan = faultPlanFromConfig(cfg, "x");
    ASSERT_NE(plan, nullptr);
    EXPECT_TRUE(plan->active());
    EXPECT_DOUBLE_EQ(plan->dropProbability, 0.5);
    EXPECT_TRUE(plan->stallWindows.empty());
}

TEST(ConfigFrontend, FaultPlanRejectsMalformedStalls)
{
    Config bad1 = Config::fromString("[x]\nfault_stalls = 1e6\n");
    EXPECT_THROW(faultPlanFromConfig(bad1, "x"), FatalError);
    Config bad2 =
        Config::fromString("[x]\nfault_stalls = 1:2:3\n");
    EXPECT_THROW(faultPlanFromConfig(bad2, "x"), FatalError);
    Config bad3 = Config::fromString("[x]\nfault_stalls = ,\n");
    EXPECT_THROW(faultPlanFromConfig(bad3, "x"), FatalError);
}

TEST(ConfigFrontend, FaultPlanValidationPropagates)
{
    // Out-of-domain probability is rejected by FaultPlan::validate.
    Config bad = Config::fromString("[x]\nfault_drop_p = 1.5\n");
    EXPECT_THROW(faultPlanFromConfig(bad, "x"), FatalError);
    // Late delay without late probability is degenerate the other way:
    // lateProbability > 0 requires a positive delay.
    Config bad2 = Config::fromString("[x]\nfault_late_p = 0.1\n");
    EXPECT_THROW(faultPlanFromConfig(bad2, "x"), FatalError);
    // Recovery before failure is inconsistent.
    Config bad3 = Config::fromString(
        "[x]\nfault_fail_at = 5e6\nfault_recover_at = 1e6\n");
    EXPECT_THROW(faultPlanFromConfig(bad3, "x"), FatalError);
}

TEST(ConfigFrontend, PlannerModeRejectsAmbiguity)
{
    Config cfg = Config::fromString(
        "[x]\nC=1e9\nalpha=0.1\nn=5\ncb=2\nn_total=10\n"
        "granularity_cdf = 0:64:1\n");
    EXPECT_THROW(paramsFromConfig(cfg, "x"), FatalError);
    Config bad = Config::fromString(
        "[x]\nC=1e9\nalpha=0.1\ncb=2\nn_total=10\n"
        "weighting = sideways\ngranularity_cdf = 0:64:1\n");
    EXPECT_THROW(paramsFromConfig(bad, "x"), FatalError);
}

} // namespace
} // namespace accel::model

/** @file Tests for fleet-level projection. */

#include "model/fleet.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

FleetService
service(const std::string &name, double servers, double alpha,
        double accel_factor)
{
    FleetService svc;
    svc.name = name;
    svc.servers = servers;
    svc.params.hostCycles = 2e9;
    svc.params.alpha = alpha;
    svc.params.offloads = 1000;
    svc.params.accelFactor = accel_factor;
    svc.design = ThreadingDesign::Sync;
    return svc;
}

TEST(Fleet, SingleServiceMatchesItsOwnSpeedup)
{
    FleetService svc = service("cache", 1000, 0.2, 10);
    FleetProjection fleet = projectFleet({svc});
    EXPECT_NEAR(fleet.fleetSpeedup, svc.speedup(), 1e-12);
    EXPECT_NEAR(fleet.serversFreed,
                1000 * (1.0 - 1.0 / svc.speedup()), 1e-9);
}

TEST(Fleet, WeightsByServerCount)
{
    // A tiny service with huge speedup moves the fleet less than a huge
    // service with modest speedup.
    FleetService big = service("web", 10000, 0.10, 100);
    FleetService small = service("ml", 100, 0.60, 100);
    FleetProjection fleet = projectFleet({big, small});
    double big_only = projectFleet({big}).fleetSpeedup;
    EXPECT_NEAR(fleet.fleetSpeedup, big_only, 0.02);
    EXPECT_GT(fleet.fleetSpeedup, big_only);
}

TEST(Fleet, HarmonicCompositionExact)
{
    FleetService a = service("a", 300, 0.25, 5);
    FleetService b = service("b", 700, 0.40, 5);
    FleetProjection fleet = projectFleet({a, b});
    double expected =
        1000.0 / (300.0 / a.speedup() + 700.0 / b.speedup());
    EXPECT_NEAR(fleet.fleetSpeedup, expected, 1e-12);
    EXPECT_NEAR(fleet.capacityFraction(),
                fleet.serversFreed / 1000.0, 1e-12);
}

TEST(Fleet, NoAccelerationFreesNothing)
{
    FleetService svc = service("flat", 500, 0.2, 1);
    svc.params.offloads = 0;
    svc.params.offloadedFraction = 0;
    FleetProjection fleet = projectFleet({svc});
    EXPECT_NEAR(fleet.fleetSpeedup, 1.0, 1e-12);
    EXPECT_NEAR(fleet.serversFreed, 0.0, 1e-9);
}

TEST(Fleet, PerServiceBreakdownReported)
{
    FleetProjection fleet = projectFleet(
        {service("a", 1, 0.2, 4), service("b", 1, 0.3, 4)});
    ASSERT_EQ(fleet.perService.size(), 2u);
    EXPECT_EQ(fleet.perService[0].first, "a");
    EXPECT_GT(fleet.perService[1].second, fleet.perService[0].second);
}

TEST(Fleet, RejectsBadInput)
{
    EXPECT_THROW(projectFleet({}), FatalError);
    FleetService svc = service("zero", 0, 0.2, 4);
    EXPECT_THROW(projectFleet({svc}), FatalError);
}

} // namespace
} // namespace accel::model

/** @file Tests for granularity-aware offload planning. */

#include "model/granularity.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

Params
offChipParams()
{
    Params p;
    p.hostCycles = 1e9;
    p.alpha = 0.2;
    p.interfaceCycles = 1000;
    p.accelFactor = 10;
    return p;
}

BucketDist
sizes()
{
    // Half the offloads at [0, 100), half at [1000, 2000).
    return BucketDist({{0, 100, 1.0}, {1000, 2000, 1.0}});
}

TEST(Planning, BreakEvenSplitsDistribution)
{
    // Cb = 2: break-even g* = 1000 / (2 * 0.9) = 555.6 — between the
    // two buckets, so exactly half the offloads are profitable.
    OffloadProfit profit{2.0, 1.0};
    auto plan = planOffloads(sizes(), 10000, 0.2, profit,
                             ThreadingDesign::Sync, offChipParams());
    EXPECT_NEAR(plan.breakEven, 555.6, 0.1);
    EXPECT_NEAR(plan.profitableFraction, 0.5, 1e-9);
    EXPECT_NEAR(plan.profitableOffloads, 5000, 1e-6);
}

TEST(Planning, CountWeightedAlphaScalesByCountFraction)
{
    OffloadProfit profit{2.0, 1.0};
    auto plan = planOffloads(sizes(), 10000, 0.2, profit,
                             ThreadingDesign::Sync, offChipParams(),
                             AlphaWeighting::CountWeighted);
    EXPECT_NEAR(plan.effectiveAlpha, 0.1, 1e-9);
    EXPECT_NEAR(plan.offloadedFraction, 0.5, 1e-9);
}

TEST(Planning, BytesWeightedAlphaScalesByByteFraction)
{
    OffloadProfit profit{2.0, 1.0};
    auto plan = planOffloads(sizes(), 10000, 0.2, profit,
                             ThreadingDesign::Sync, offChipParams(),
                             AlphaWeighting::BytesWeighted);
    // Large bucket carries 0.5*1500 of 0.5*50 + 0.5*1500 bytes.
    double expected = 1500.0 / (50.0 + 1500.0);
    EXPECT_NEAR(plan.offloadedFraction, expected, 1e-9);
    EXPECT_NEAR(plan.effectiveAlpha, 0.2 * expected, 1e-9);
}

TEST(Planning, BytesWeightingMovesMoreAlphaThanCounts)
{
    // Big offloads carry disproportionate bytes: bytes-weighted
    // offloaded fraction must exceed count-weighted whenever the
    // break-even cuts off the small end.
    OffloadProfit profit{2.0, 1.0};
    auto count = planOffloads(sizes(), 1000, 0.2, profit,
                              ThreadingDesign::Sync, offChipParams(),
                              AlphaWeighting::CountWeighted);
    auto bytes = planOffloads(sizes(), 1000, 0.2, profit,
                              ThreadingDesign::Sync, offChipParams(),
                              AlphaWeighting::BytesWeighted);
    EXPECT_GT(bytes.effectiveAlpha, count.effectiveAlpha);
}

TEST(Planning, AllProfitableWhenNoOverhead)
{
    Params p = offChipParams();
    p.interfaceCycles = 0;
    OffloadProfit profit{2.0, 1.0};
    auto plan = planOffloads(sizes(), 100, 0.2, profit,
                             ThreadingDesign::Sync, p);
    EXPECT_DOUBLE_EQ(plan.profitableFraction, 1.0);
    EXPECT_DOUBLE_EQ(plan.offloadedFraction, 1.0);
}

TEST(Planning, NoneProfitableWithUnityAccelerator)
{
    Params p = offChipParams();
    p.accelFactor = 1.0;
    OffloadProfit profit{2.0, 1.0};
    auto plan = planOffloads(sizes(), 100, 0.2, profit,
                             ThreadingDesign::Sync, p);
    EXPECT_DOUBLE_EQ(plan.profitableFraction, 0.0);
    EXPECT_DOUBLE_EQ(plan.profitableOffloads, 0.0);
}

TEST(Planning, ApplyPlanProducesValidParams)
{
    OffloadProfit profit{2.0, 1.0};
    auto plan = planOffloads(sizes(), 10000, 0.2, profit,
                             ThreadingDesign::Sync, offChipParams());
    Params p = applyPlan(offChipParams(), 0.2, plan);
    EXPECT_DOUBLE_EQ(p.alpha, 0.2);
    EXPECT_DOUBLE_EQ(p.offloads, plan.profitableOffloads);
    EXPECT_DOUBLE_EQ(p.offloadedFraction, plan.offloadedFraction);
    EXPECT_NO_THROW(p.validate());
}

TEST(Planning, AppliedPlanReducesSpeedupVsFullOffload)
{
    // Selectively offloading strictly fewer kernels cannot beat the
    // hypothetical zero-overhead full offload.
    OffloadProfit profit{2.0, 1.0};
    auto plan = planOffloads(sizes(), 10000, 0.2, profit,
                             ThreadingDesign::Sync, offChipParams());
    Params partial = applyPlan(offChipParams(), 0.2, plan);
    Params full = offChipParams();
    full.alpha = 0.2;
    full.offloads = plan.profitableOffloads;
    full.interfaceCycles = 0;
    Accelerometer pm(partial), fm(full);
    EXPECT_LT(pm.speedup(ThreadingDesign::Sync),
              fm.speedup(ThreadingDesign::Sync));
}

TEST(Planning, RejectsBadInputs)
{
    OffloadProfit profit{2.0, 1.0};
    EXPECT_THROW(planOffloads(sizes(), -1, 0.2, profit,
                              ThreadingDesign::Sync, offChipParams()),
                 FatalError);
    EXPECT_THROW(planOffloads(sizes(), 10, 1.5, profit,
                              ThreadingDesign::Sync, offChipParams()),
                 FatalError);
}

} // namespace
} // namespace accel::model

/** @file Tests for the LogCA baseline model. */

#include "model/logca.hh"

#include "model/accelerometer.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

LogCAParams
baseParams()
{
    return {/*latencyPerByte=*/0.5, /*overheadCycles=*/1000,
            /*cyclesPerByte=*/10.0, /*accelFactor=*/20.0, /*beta=*/1.0};
}

TEST(LogCA, TimesFollowDefinition)
{
    LogCA m(baseParams());
    EXPECT_DOUBLE_EQ(m.hostTime(100), 1000.0);
    EXPECT_DOUBLE_EQ(m.accelTime(100), 1000 + 50 + 50);
}

TEST(LogCA, SpeedupIsHostOverAccel)
{
    LogCA m(baseParams());
    EXPECT_NEAR(m.speedup(100), 1000.0 / 1100.0, 1e-12);
}

TEST(LogCA, SpeedupMonotoneInGranularity)
{
    LogCA m(baseParams());
    double prev = 0;
    for (double g = 1; g <= 1 << 20; g *= 4) {
        double s = m.speedup(g);
        EXPECT_GE(s, prev - 1e-12);
        prev = s;
    }
}

TEST(LogCA, G1IsBreakEven)
{
    LogCA m(baseParams());
    double g1 = m.g1();
    ASSERT_TRUE(std::isfinite(g1));
    EXPECT_LT(m.speedup(g1 * 0.9), 1.0);
    EXPECT_GE(m.speedup(g1 * 1.1), 1.0);
    // Closed form for beta=1: o / (C (1 - 1/A) - L) = 1000 / 9.0.
    EXPECT_NEAR(g1, 1000.0 / 9.0, 1.0);
}

TEST(LogCA, PeakSpeedupLinearKernel)
{
    LogCA m(baseParams());
    // C / (L + C/A) = 10 / (0.5 + 0.5) = 10.
    EXPECT_NEAR(m.peakSpeedup(), 10.0, 1e-9);
    EXPECT_LT(m.peakSpeedup(), baseParams().accelFactor);
}

TEST(LogCA, GHalfReachesHalfPeak)
{
    LogCA m(baseParams());
    double gh = m.gHalf();
    ASSERT_TRUE(std::isfinite(gh));
    EXPECT_NEAR(m.speedup(gh), m.peakSpeedup() / 2.0, 0.01);
}

TEST(LogCA, SuperLinearKernelReachesFullAcceleration)
{
    LogCAParams p = baseParams();
    p.beta = 2.0;
    LogCA m(p);
    EXPECT_DOUBLE_EQ(m.peakSpeedup(), p.accelFactor);
    // At large g the transfer cost amortizes away.
    EXPECT_NEAR(m.speedup(1e6), p.accelFactor, 0.5);
}

TEST(LogCA, SubLinearKernelCollapses)
{
    LogCAParams p = baseParams();
    p.beta = 0.5;
    LogCA m(p);
    EXPECT_DOUBLE_EQ(m.peakSpeedup(), 0.0);
}

TEST(LogCA, ZeroLatencyInterfaceBoundedByA)
{
    LogCAParams p = baseParams();
    p.latencyPerByte = 0;
    LogCA m(p);
    EXPECT_DOUBLE_EQ(m.peakSpeedup(), p.accelFactor);
}

TEST(LogCA, UnreachableTargetIsInfinite)
{
    LogCAParams p = baseParams();
    p.accelFactor = 1.0;
    p.latencyPerByte = 1.0;
    LogCA m(p);
    // Offload always adds overhead: never breaks even.
    EXPECT_TRUE(std::isinf(m.g1()));
}

TEST(LogCA, ValidatesParameters)
{
    LogCAParams p = baseParams();
    p.cyclesPerByte = 0;
    EXPECT_THROW(LogCA{p}, FatalError);
    p = baseParams();
    p.accelFactor = 0.5;
    EXPECT_THROW(LogCA{p}, FatalError);
    p = baseParams();
    p.beta = 0;
    EXPECT_THROW(LogCA{p}, FatalError);
    p = baseParams();
    p.latencyPerByte = -1;
    EXPECT_THROW(LogCA{p}, FatalError);
}

TEST(LogCA, MatchesAccelerometerSyncAssumption)
{
    // LogCA assumes the CPU waits during the offload — the Sync design.
    // For one offload of granularity g, Accelerometer's Sync CS over C
    // must equal LogCA's accelTime over hostTime.
    LogCAParams lp = baseParams();
    double g = 10000;
    LogCA logca(lp);

    Params ap;
    ap.hostCycles = lp.cyclesPerByte * g; // all cycles are the kernel
    ap.alpha = 1.0;
    ap.offloads = 1;
    ap.setupCycles = lp.overheadCycles;
    ap.interfaceCycles = lp.latencyPerByte * g;
    ap.accelFactor = lp.accelFactor;
    Accelerometer accel(ap);
    EXPECT_NEAR(accel.speedup(ThreadingDesign::Sync), logca.speedup(g),
                1e-9);
}


TEST(LogCA, PipelinedOverlapsTransferAndExecution)
{
    LogCAParams p = baseParams();
    p.pipelined = true;
    LogCA pipelined(p);
    LogCA unpipelined(baseParams());
    // transfer(100) = 50, execute(100) = 50: pipelined pays max = 50.
    EXPECT_DOUBLE_EQ(pipelined.accelTime(100), 1000 + 50);
    EXPECT_DOUBLE_EQ(unpipelined.accelTime(100), 1000 + 100);
    EXPECT_GT(pipelined.speedup(100), unpipelined.speedup(100));
}

TEST(LogCA, PipelinedPeakBoundedBySlowerStage)
{
    LogCAParams p = baseParams();
    p.pipelined = true;
    LogCA m(p);
    // C / max(L, C/A) = 10 / max(0.5, 0.5) = 20 = A here.
    EXPECT_NEAR(m.peakSpeedup(), 20.0, 1e-9);
    // Transfer-bound case: L dominates C/A.
    p.latencyPerByte = 2.0;
    LogCA bound(p);
    EXPECT_NEAR(bound.peakSpeedup(), 5.0, 1e-9);
}

TEST(LogCA, PipelinedBreaksEvenEarlier)
{
    LogCAParams p = baseParams();
    p.pipelined = true;
    LogCA pipelined(p);
    LogCA unpipelined(baseParams());
    EXPECT_LT(pipelined.g1(), unpipelined.g1());
}

} // namespace
} // namespace accel::model

/**
 * @file
 * Golden-number tests: every speedup the paper publishes in Table 6 and
 * Fig. 20 must fall out of the model with the published parameters.
 */

#include <gtest/gtest.h>

#include "model/accelerometer.hh"
#include "workload/request_factory.hh"

namespace accel::model {
namespace {

// ------------------------- Table 6 -------------------------

TEST(Table6, AesNiEstimatedSpeedup)
{
    // Row 1: C=2.0e9, α=0.165844, n=298,951, o0=10, Q=0, L=3, A=6 ->
    // estimated 15.7 % under Sync (eq. 1).
    Params p;
    p.hostCycles = 2.0e9;
    p.alpha = 0.165844;
    p.offloads = 298951;
    p.setupCycles = 10;
    p.interfaceCycles = 3;
    p.accelFactor = 6;
    p.strategy = Strategy::OnChip;
    Accelerometer m(p);
    EXPECT_NEAR(m.speedup(ThreadingDesign::Sync) - 1.0, 0.157, 0.002);
}

TEST(Table6, OffChipEncryptionEstimatedSpeedup)
{
    // Row 2: C=2.3e9, α=0.19154, n=101,863, o0=0, Q=0, L=2530 ->
    // estimated 8.6 % under Async no-response (eq. 6).
    Params p;
    p.hostCycles = 2.3e9;
    p.alpha = 0.19154;
    p.offloads = 101863;
    p.interfaceCycles = 2530;
    p.accelFactor = 27;
    p.strategy = Strategy::OffChip;
    Accelerometer m(p);
    EXPECT_NEAR(m.speedup(ThreadingDesign::AsyncNoResponse) - 1.0, 0.086,
                0.002);
}

TEST(Table6, RemoteInferenceEstimatedSpeedup)
{
    // Row 3: C=2.5e9, α=0.52, n=10, o0=25e6, o1=12,500, A=1 ->
    // estimated 72.39 % with a single o1 (distinct response thread).
    Params p;
    p.hostCycles = 2.5e9;
    p.alpha = 0.52;
    p.offloads = 10;
    p.setupCycles = 25e6;
    p.threadSwitchCycles = 12500;
    p.accelFactor = 1;
    p.strategy = Strategy::Remote;
    Accelerometer m(p);
    EXPECT_NEAR(m.speedup(ThreadingDesign::AsyncDistinctThread) - 1.0,
                0.7239, 0.002);
}

TEST(Table6, CaseStudyBuildersCarryPublishedParams)
{
    for (const auto &cs : workload::allCaseStudies()) {
        Accelerometer m(cs.publishedParams);
        EXPECT_NEAR(m.speedup(cs.design) - 1.0, cs.paperEstimatedSpeedup,
                    0.003)
            << cs.name;
    }
}

// ------------------------- Fig. 20 / Table 7 -------------------------

TEST(Fig20, Feed1IdealCompressionSpeedup)
{
    // α = 0.15 -> ideal 17.6 %.
    Params p;
    p.hostCycles = 2.3e9;
    p.alpha = 0.15;
    Accelerometer m(p);
    EXPECT_NEAR(m.idealSpeedup() - 1.0, 0.176, 0.001);
}

TEST(Fig20, AllRecommendationsMatchPublishedBars)
{
    for (const auto &rec : workload::fig20Recommendations()) {
        Accelerometer m(rec.params);
        double pct = (m.speedup(rec.design) - 1.0) * 100.0;
        EXPECT_NEAR(pct, rec.paperSpeedupPercent, 0.45)
            << rec.overhead << " / " << rec.acceleration;
    }
}

TEST(Fig20, OffChipProfitableCountsMatchTable7)
{
    // Table 7's n column: 9,629 Sync / 3,986 Sync-OS / 9,769 Async out
    // of 15,008 total compressions.
    std::vector<double> expected = {15008, 9629, 3986, 9769};
    auto recs = workload::fig20Recommendations();
    ASSERT_GE(recs.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(recs[i].params.offloads, expected[i],
                    expected[i] * 0.01)
            << recs[i].acceleration;
    }
}

TEST(Fig20, CompressionBreakEvenIs425Bytes)
{
    Params p;
    p.hostCycles = 2.3e9;
    p.alpha = 0.15;
    p.interfaceCycles = 2300;
    p.accelFactor = 27;
    OffloadProfit profit{workload::feed1CompressionCyclesPerByte(), 1.0};
    EXPECT_NEAR(profit.breakEvenSpeedup(ThreadingDesign::Sync, p), 425.0,
                0.5);
}

TEST(Fig20, OnChipBeatsOffChipForCompression)
{
    // The paper's observation: on-chip 13.6 % > off-chip sync 9 % even
    // though the off-chip device is 27x vs 5x.
    auto recs = workload::fig20Recommendations();
    Accelerometer on_chip(recs[0].params);
    Accelerometer off_chip(recs[1].params);
    EXPECT_GT(on_chip.speedup(recs[0].design),
              off_chip.speedup(recs[1].design));
}

TEST(Fig20, MemoryAllocationGainIsSmall)
{
    // A = 1.5 on 5.5 % of cycles: 1.86 % — the paper's point that
    // allocation acceleration alone yields modest wins.
    auto recs = workload::fig20Recommendations();
    Accelerometer m(recs.back().params);
    double pct = (m.speedup(ThreadingDesign::Sync) - 1.0) * 100.0;
    EXPECT_NEAR(pct, 1.86, 0.05);
}

// ------------------------- §2.4 ideal bounds -------------------------

TEST(Section24, InferenceAccelerationBounds)
{
    // "Even if modern inference accelerators were to offer an infinite
    // inference speedup, the net microservice performance would only
    // improve by 1.49x - 2.38x."
    const workload::ServiceProfile &ads2 =
        workload::profile(workload::ServiceId::Ads2);
    const workload::ServiceProfile &feed1 =
        workload::profile(workload::ServiceId::Feed1);
    double ads2_pred = ads2.functionalityShare.at(
        workload::Functionality::PredictionRanking);
    double feed1_pred = feed1.functionalityShare.at(
        workload::Functionality::PredictionRanking);
    EXPECT_NEAR(1.0 / (1.0 - ads2_pred / 100.0), 1.49, 0.02);
    EXPECT_NEAR(1.0 / (1.0 - feed1_pred / 100.0), 2.38, 0.02);
}

} // namespace
} // namespace accel::model

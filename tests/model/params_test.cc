/** @file Tests for model parameter validation and enum parsing. */

#include "model/params.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

Params
goodParams()
{
    Params p;
    p.hostCycles = 2e9;
    p.alpha = 0.2;
    p.offloads = 1000;
    p.accelFactor = 4;
    return p;
}

TEST(Params, ValidAccepted)
{
    EXPECT_NO_THROW(goodParams().validate());
}

TEST(Params, RejectsNonPositiveC)
{
    Params p = goodParams();
    p.hostCycles = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Params, RejectsAlphaOutsideUnit)
{
    Params p = goodParams();
    p.alpha = 1.1;
    EXPECT_THROW(p.validate(), FatalError);
    p.alpha = -0.1;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Params, RejectsNegativeOverheads)
{
    for (auto field : {&Params::setupCycles, &Params::queueCycles,
                       &Params::interfaceCycles,
                       &Params::threadSwitchCycles}) {
        Params p = goodParams();
        p.*field = -1;
        EXPECT_THROW(p.validate(), FatalError);
    }
}

TEST(Params, RejectsAccelFactorBelowOne)
{
    Params p = goodParams();
    p.accelFactor = 0.5;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Params, RejectsOffloadedFractionOutsideUnit)
{
    Params p = goodParams();
    p.offloadedFraction = 1.5;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Params, DerivedQuantities)
{
    Params p = goodParams();
    p.offloadedFraction = 0.5;
    EXPECT_DOUBLE_EQ(p.kernelCycles(), 0.2 * 2e9);
    EXPECT_DOUBLE_EQ(p.offloadedCycles(), 0.1 * 2e9);
    EXPECT_DOUBLE_EQ(p.residualKernelCycles(), 0.1 * 2e9);
    p.setupCycles = 10;
    p.interfaceCycles = 3;
    p.queueCycles = 2;
    EXPECT_DOUBLE_EQ(p.dispatchCycles(), 15);
}

TEST(Enums, StrategyRoundTrip)
{
    for (Strategy s :
         {Strategy::OnChip, Strategy::OffChip, Strategy::Remote}) {
        EXPECT_EQ(strategyFromString(toString(s)), s);
    }
}

TEST(Enums, StrategySpellings)
{
    EXPECT_EQ(strategyFromString("OnChip"), Strategy::OnChip);
    EXPECT_EQ(strategyFromString("off_chip"), Strategy::OffChip);
    EXPECT_EQ(strategyFromString(" REMOTE "), Strategy::Remote);
    EXPECT_THROW(strategyFromString("quantum"), FatalError);
}

TEST(Enums, ThreadingRoundTrip)
{
    for (ThreadingDesign d :
         {ThreadingDesign::Sync, ThreadingDesign::SyncOS,
          ThreadingDesign::AsyncSameThread,
          ThreadingDesign::AsyncDistinctThread,
          ThreadingDesign::AsyncNoResponse}) {
        EXPECT_EQ(threadingFromString(toString(d)), d);
    }
}

TEST(Enums, ThreadingSpellings)
{
    EXPECT_EQ(threadingFromString("sync"), ThreadingDesign::Sync);
    EXPECT_EQ(threadingFromString("Sync-OS"), ThreadingDesign::SyncOS);
    EXPECT_EQ(threadingFromString("async"),
              ThreadingDesign::AsyncSameThread);
    EXPECT_EQ(threadingFromString("async-fire-and-forget"),
              ThreadingDesign::AsyncNoResponse);
    EXPECT_THROW(threadingFromString("psychic"), FatalError);
}

} // namespace
} // namespace accel::model

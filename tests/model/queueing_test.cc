/** @file Tests for the accelerator queuing helpers. */

#include "model/queueing.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

TEST(Queueing, UtilizationDefinition)
{
    // 1000 cycles per offload, 1e6 offloads/s, 2e9 cycles/s -> 0.5.
    EXPECT_DOUBLE_EQ(utilization(1000, 1e6, 2e9), 0.5);
    EXPECT_DOUBLE_EQ(utilization(0, 1e6, 2e9), 0.0);
}

TEST(Queueing, Mm1WaitFormula)
{
    // rho/(1-rho) * s with rho = 0.5 -> wait == service.
    EXPECT_DOUBLE_EQ(mm1WaitCycles(1000, 1e6, 2e9), 1000.0);
}

TEST(Queueing, Md1IsHalfMm1)
{
    double mm1 = mm1WaitCycles(1000, 1e6, 2e9);
    double md1 = md1WaitCycles(1000, 1e6, 2e9);
    EXPECT_DOUBLE_EQ(md1, mm1 / 2.0);
}

TEST(Queueing, WaitExplodesNearSaturation)
{
    double low = mm1WaitCycles(1000, 0.2e6, 2e9);  // rho = 0.1
    double high = mm1WaitCycles(1000, 1.9e6, 2e9); // rho = 0.95
    EXPECT_GT(high, 100 * low);
}

TEST(Queueing, ZeroLoadHasNoWait)
{
    EXPECT_DOUBLE_EQ(mm1WaitCycles(1000, 0, 2e9), 0.0);
}

TEST(Queueing, UnstableQueueRejected)
{
    EXPECT_THROW(mm1WaitCycles(1000, 2e6, 2e9), FatalError); // rho = 1
    EXPECT_THROW(md1WaitCycles(1000, 3e6, 2e9), FatalError);
}

TEST(Queueing, DomainChecks)
{
    EXPECT_THROW(utilization(-1, 1, 1), FatalError);
    EXPECT_THROW(utilization(1, -1, 1), FatalError);
    EXPECT_THROW(utilization(1, 1, 0), FatalError);
}

TEST(Queueing, ErlangCKnownValues)
{
    // k=1: C(1, a) = a (an arrival waits iff the server is busy).
    EXPECT_NEAR(erlangC(1, 0.5), 0.5, 1e-12);
    EXPECT_NEAR(erlangC(1, 0.9), 0.9, 1e-12);
    // k=2, a=1 (rho=0.5): B(1)=1/2, B(2)=1/5, C = (1/5)/(1-1/2*4/5)
    //   = 1/3 — the textbook value.
    EXPECT_NEAR(erlangC(2, 1.0), 1.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(erlangC(4, 0.0), 0.0);
}

TEST(Queueing, ErlangCStableAtLargeServerCounts)
{
    // The naive factorial form overflows near k ~ 171; the recurrence
    // must stay finite and inside [0, 1].
    double c = erlangC(500, 450.0); // rho = 0.9 at k = 500
    EXPECT_TRUE(std::isfinite(c));
    EXPECT_GT(c, 0.0);
    EXPECT_LT(c, 1.0);
}

TEST(Queueing, MmkReducesToMm1AtOneServer)
{
    EXPECT_NEAR(mmkWaitCycles(1000, 1e6, 2e9, 1),
                mm1WaitCycles(1000, 1e6, 2e9), 1e-9);
    EXPECT_NEAR(mmkWaitCycles(1000, 1.9e6, 2e9, 1),
                mm1WaitCycles(1000, 1.9e6, 2e9), 1e-9);
}

TEST(Queueing, MmkPoolingBeatsSplitMm1)
{
    // k pooled servers always wait less than k separate M/M/1 queues
    // each fed lambda/k, and more servers never wait longer.
    double split = mm1WaitCycles(1000, 1e6, 2e9);       // rho = 0.5
    double pooled2 = mmkWaitCycles(1000, 2e6, 2e9, 2);  // same per-server
    double pooled4 = mmkWaitCycles(1000, 4e6, 2e9, 4);
    EXPECT_LT(pooled2, split);
    EXPECT_LT(pooled4, pooled2);
}

TEST(Queueing, MmkDomainChecks)
{
    EXPECT_THROW(erlangC(0, 0.5), FatalError);
    EXPECT_THROW(erlangC(2, 2.0), FatalError);  // a >= k
    EXPECT_THROW(erlangC(2, -1.0), FatalError);
    EXPECT_THROW(mmkWaitCycles(1000, 4e6, 2e9, 2), FatalError); // a = 2
    EXPECT_THROW(mmkWaitCycles(1000, 1e6, 2e9, 0), FatalError);
    EXPECT_DOUBLE_EQ(mmkWaitCycles(1000, 0, 2e9, 3), 0.0);
}

TEST(Queueing, MinServersForWaitFindsSmallestFeasibleK)
{
    // 1000-cycle service at 1.5M/s on 1 GHz: a = 1.5, so k = 2 is the
    // first stable pool. Whether it also meets the budget depends on
    // the budget: the returned k must satisfy it and k - 1 must not
    // (either unstable or over budget).
    const double s = 1000, lam = 1.5e6, hz = 1e9;
    unsigned tight = minServersForWait(s, lam, hz, 10.0);
    EXPECT_GT(tight, 2u);
    EXPECT_LE(mmkWaitCycles(s, lam, hz, tight), 10.0);
    EXPECT_GT(mmkWaitCycles(s, lam, hz, tight - 1), 10.0);
    // A generous budget is met by the first stable k.
    unsigned loose = minServersForWait(s, lam, hz, 1e9);
    EXPECT_EQ(loose, 2u);
    // Monotone: tighter budgets never need fewer servers.
    EXPECT_GE(minServersForWait(s, lam, hz, 1.0), tight);
}

TEST(Queueing, MinServersForWaitZeroLoadNeedsOneServer)
{
    EXPECT_EQ(minServersForWait(1000, 0, 1e9, 5.0), 1u);
}

TEST(Queueing, MinServersForWaitDomainChecks)
{
    // Infeasible within maxServers: k is capped at 4 but a = 1.5 needs
    // more than 4 servers to hit a near-zero wait budget.
    EXPECT_THROW(minServersForWait(1000, 1.5e6, 1e9, 1e-9, 4),
                 FatalError);
    // Zero service time waits zero cycles on any single server.
    EXPECT_EQ(minServersForWait(0, 1e6, 1e9, 10.0), 1u);
    EXPECT_THROW(minServersForWait(-1, 1e6, 1e9, 10.0), FatalError);
    EXPECT_THROW(minServersForWait(1000, -1, 1e9, 10.0), FatalError);
    EXPECT_THROW(minServersForWait(1000, 1e6, 0, 10.0), FatalError);
    EXPECT_THROW(minServersForWait(1000, 1e6, 1e9, -1.0), FatalError);
}

TEST(Queueing, MeanFromSamples)
{
    EXPECT_DOUBLE_EQ(meanQueueCycles({10, 20, 30}), 20.0);
    EXPECT_DOUBLE_EQ(meanQueueCycles({}), 0.0);
    EXPECT_THROW(meanQueueCycles({5, -1}), FatalError);
}

} // namespace
} // namespace accel::model

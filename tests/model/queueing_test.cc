/** @file Tests for the accelerator queuing helpers. */

#include "model/queueing.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

TEST(Queueing, UtilizationDefinition)
{
    // 1000 cycles per offload, 1e6 offloads/s, 2e9 cycles/s -> 0.5.
    EXPECT_DOUBLE_EQ(utilization(1000, 1e6, 2e9), 0.5);
    EXPECT_DOUBLE_EQ(utilization(0, 1e6, 2e9), 0.0);
}

TEST(Queueing, Mm1WaitFormula)
{
    // rho/(1-rho) * s with rho = 0.5 -> wait == service.
    EXPECT_DOUBLE_EQ(mm1WaitCycles(1000, 1e6, 2e9), 1000.0);
}

TEST(Queueing, Md1IsHalfMm1)
{
    double mm1 = mm1WaitCycles(1000, 1e6, 2e9);
    double md1 = md1WaitCycles(1000, 1e6, 2e9);
    EXPECT_DOUBLE_EQ(md1, mm1 / 2.0);
}

TEST(Queueing, WaitExplodesNearSaturation)
{
    double low = mm1WaitCycles(1000, 0.2e6, 2e9);  // rho = 0.1
    double high = mm1WaitCycles(1000, 1.9e6, 2e9); // rho = 0.95
    EXPECT_GT(high, 100 * low);
}

TEST(Queueing, ZeroLoadHasNoWait)
{
    EXPECT_DOUBLE_EQ(mm1WaitCycles(1000, 0, 2e9), 0.0);
}

TEST(Queueing, UnstableQueueRejected)
{
    EXPECT_THROW(mm1WaitCycles(1000, 2e6, 2e9), FatalError); // rho = 1
    EXPECT_THROW(md1WaitCycles(1000, 3e6, 2e9), FatalError);
}

TEST(Queueing, DomainChecks)
{
    EXPECT_THROW(utilization(-1, 1, 1), FatalError);
    EXPECT_THROW(utilization(1, -1, 1), FatalError);
    EXPECT_THROW(utilization(1, 1, 0), FatalError);
}

TEST(Queueing, MeanFromSamples)
{
    EXPECT_DOUBLE_EQ(meanQueueCycles({10, 20, 30}), 20.0);
    EXPECT_DOUBLE_EQ(meanQueueCycles({}), 0.0);
    EXPECT_THROW(meanQueueCycles({5, -1}), FatalError);
}

} // namespace
} // namespace accel::model

/** @file Tests for model report rendering. */

#include "model/report.hh"

#include <gtest/gtest.h>

namespace accel::model {
namespace {

Params
params()
{
    Params p;
    p.hostCycles = 2e9;
    p.alpha = 0.165844;
    p.offloads = 298951;
    p.setupCycles = 10;
    p.interfaceCycles = 3;
    p.accelFactor = 6;
    return p;
}

TEST(Report, ContainsAllDesignsAndIdeal)
{
    std::string r = projectionReport(params(), "AES-NI");
    EXPECT_NE(r.find("AES-NI"), std::string::npos);
    for (ThreadingDesign d : reportedDesigns())
        EXPECT_NE(r.find(toString(d)), std::string::npos);
    EXPECT_NE(r.find("ideal"), std::string::npos);
}

TEST(Report, ShowsParameterValues)
{
    std::string r = projectionReport(params());
    EXPECT_NE(r.find("alpha=0.1658"), std::string::npos);
    EXPECT_NE(r.find("A=6.00"), std::string::npos);
}

TEST(Report, SyncLineShowsPaperNumber)
{
    std::string line = projectionLine(params(), ThreadingDesign::Sync);
    EXPECT_NE(line.find("Sync"), std::string::npos);
    EXPECT_NE(line.find("15.7"), std::string::npos);
}

TEST(Report, ReportedDesignsStable)
{
    EXPECT_EQ(reportedDesigns().size(), 5u);
    EXPECT_EQ(reportedDesigns().front(), ThreadingDesign::Sync);
}

} // namespace
} // namespace accel::model

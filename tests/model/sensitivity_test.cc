/** @file Tests for parameter sensitivity analysis. */

#include "model/sensitivity.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

Params
offChipParams()
{
    Params p;
    p.hostCycles = 2.3e9;
    p.alpha = 0.15;
    p.offloads = 9629;
    p.interfaceCycles = 2300;
    p.threadSwitchCycles = 5750;
    p.accelFactor = 27;
    return p;
}

const Sensitivity &
find(const std::vector<Sensitivity> &sens, const std::string &name)
{
    for (const auto &s : sens)
        if (s.parameter == name)
            return s;
    throw PanicError("sensitivity not found: " + name);
}

TEST(Sensitivity, SignsMatchTheEquations)
{
    auto sens =
        speedupSensitivities(offChipParams(), ThreadingDesign::Sync);
    EXPECT_GT(find(sens, "alpha").derivative, 0);
    EXPECT_GT(find(sens, "A").derivative, 0);
    EXPECT_LT(find(sens, "L").derivative, 0);
    EXPECT_LT(find(sens, "o0").derivative, 0);
    EXPECT_LT(find(sens, "n").derivative, 0);
    EXPECT_LT(find(sens, "Q").derivative, 0); // more queueing hurts
}

TEST(Sensitivity, SwitchCostOnlyMattersForSwitchingDesigns)
{
    auto sync =
        speedupSensitivities(offChipParams(), ThreadingDesign::Sync);
    auto sync_os =
        speedupSensitivities(offChipParams(), ThreadingDesign::SyncOS);
    EXPECT_NEAR(find(sync, "o1").derivative, 0.0, 1e-12);
    EXPECT_LT(find(sync_os, "o1").derivative, 0);
}

TEST(Sensitivity, AlphaDominatesElasticityRanking)
{
    // For the off-chip compression case, what fraction of cycles the
    // kernel is (alpha) moves the projection more than any overhead.
    auto sens =
        speedupSensitivities(offChipParams(), ThreadingDesign::Sync);
    EXPECT_EQ(sens.front().parameter, "alpha");
}

TEST(Sensitivity, AcceleratorFactorSaturates)
{
    // At A = 27 the device is already past the knee: its elasticity is
    // tiny compared to alpha's (Fig. 20's lesson).
    auto sens =
        speedupSensitivities(offChipParams(), ThreadingDesign::Sync);
    EXPECT_LT(std::abs(find(sens, "A").elasticity),
              std::abs(find(sens, "alpha").elasticity) / 5);
}

TEST(Sensitivity, DerivativeMatchesAnalyticForA)
{
    // d(speedup)/dA for Sync: speedup = 1/(k + alpha/A) with
    // k = (1-alpha) + n/C * ovh; derivative = alpha / (A*(k*A+alpha))^2
    // * ... — check against a coarse analytic value.
    Params p = offChipParams();
    double ovh = p.dispatchCycles();
    double k = (1 - p.alpha) + p.offloads / p.hostCycles * ovh;
    double denom = k + p.alpha / p.accelFactor;
    double analytic = p.alpha /
        (p.accelFactor * p.accelFactor * denom * denom);
    auto sens = speedupSensitivities(p, ThreadingDesign::Sync);
    EXPECT_NEAR(find(sens, "A").derivative, analytic,
                std::abs(analytic) * 0.01);
}

TEST(Sensitivity, ZeroValuedParamsReportZeroElasticity)
{
    Params p = offChipParams();
    p.setupCycles = 0;
    auto sens = speedupSensitivities(p, ThreadingDesign::Sync);
    EXPECT_DOUBLE_EQ(find(sens, "o0").elasticity, 0.0);
    EXPECT_LT(find(sens, "o0").derivative, 0); // still harmful per unit
}

TEST(Sensitivity, RankedByAbsoluteElasticity)
{
    auto sens =
        speedupSensitivities(offChipParams(), ThreadingDesign::SyncOS);
    for (size_t i = 1; i < sens.size(); ++i) {
        EXPECT_GE(std::abs(sens[i - 1].elasticity),
                  std::abs(sens[i].elasticity));
    }
}

TEST(Sensitivity, ReportRendersAllParameters)
{
    std::string report =
        sensitivityReport(offChipParams(), ThreadingDesign::Sync);
    for (const char *name : {"alpha", "n", "o0", "Q", "L", "o1", "A"})
        EXPECT_NE(report.find(name), std::string::npos) << name;
}

TEST(Sensitivity, RejectsBadStep)
{
    EXPECT_THROW(speedupSensitivities(offChipParams(),
                                      ThreadingDesign::Sync, 0.0),
                 FatalError);
}

} // namespace
} // namespace accel::model

/** @file Tests for parameter sweeps. */

#include "model/sweep.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::model {
namespace {

Params
base()
{
    Params p;
    p.hostCycles = 1e9;
    p.alpha = 0.25;
    p.offloads = 1e5;
    p.interfaceCycles = 500;
    p.accelFactor = 8;
    return p;
}

TEST(Spaces, LinspaceEndpointsAndSpacing)
{
    auto xs = linspace(0, 10, 5);
    ASSERT_EQ(xs.size(), 5u);
    EXPECT_DOUBLE_EQ(xs.front(), 0);
    EXPECT_DOUBLE_EQ(xs.back(), 10);
    EXPECT_DOUBLE_EQ(xs[1], 2.5);
}

TEST(Spaces, LogspaceRatios)
{
    auto xs = logspace(1, 1000, 4);
    ASSERT_EQ(xs.size(), 4u);
    EXPECT_NEAR(xs[1] / xs[0], 10.0, 1e-9);
    EXPECT_NEAR(xs[3], 1000.0, 1e-6);
}

TEST(Spaces, DomainChecks)
{
    EXPECT_THROW(linspace(0, 1, 1), FatalError);
    EXPECT_THROW(linspace(2, 1, 3), FatalError);
    EXPECT_THROW(logspace(0, 10, 3), FatalError);
}

TEST(Sweeps, AccelFactorMonotone)
{
    auto points = sweepAccelFactor(base(), ThreadingDesign::Sync,
                                   {1, 2, 4, 8, 16});
    ASSERT_EQ(points.size(), 5u);
    for (size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].projection.speedup,
                  points[i - 1].projection.speedup);
    }
}

TEST(Sweeps, InterfaceLatencyMonotone)
{
    auto points = sweepInterfaceLatency(
        base(), ThreadingDesign::AsyncSameThread, {0, 100, 1000, 10000});
    for (size_t i = 1; i < points.size(); ++i) {
        EXPECT_LE(points[i].projection.speedup,
                  points[i - 1].projection.speedup);
    }
}

TEST(Sweeps, AlphaSweepApproachesIdeal)
{
    auto points =
        sweepAlpha(base(), ThreadingDesign::AsyncSameThread, {0.1, 0.9});
    EXPECT_LT(points[0].projection.speedup, points[1].projection.speedup);
}

TEST(Sweeps, GenericSweepAppliesMutator)
{
    auto points = sweep(base(), ThreadingDesign::Sync, {10.0, 20.0},
                        [](Params &p, double x) { p.setupCycles = x; });
    ASSERT_EQ(points.size(), 2u);
    EXPECT_GT(points[0].projection.speedup, points[1].projection.speedup);
}

TEST(Sweeps, LoadSweepDropsUnstablePoints)
{
    // Service time 1000 cycles, clock 1e9: loads beyond 1e6/s unstable.
    auto points = sweepLoad(base(), ThreadingDesign::Sync, 1000, 1e9,
                            {1e5, 5e5, 9e5, 2e6});
    EXPECT_EQ(points.size(), 3u);
    // Speedup degrades as queueing grows with load.
    for (size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i].projection.speedup,
                  points[i - 1].projection.speedup);
    }
}

TEST(Sweeps, LoadSweepSurfacesOmissionCount)
{
    size_t omitted = 99;
    auto points = sweepLoad(base(), ThreadingDesign::Sync, 1000, 1e9,
                            {1e5, 5e5, 9e5, 2e6, 3e6}, &omitted);
    EXPECT_EQ(points.size(), 3u);
    EXPECT_EQ(omitted, 2u);
}

TEST(Sweeps, FullySaturatedLoadSweepReportsAllPointsOmitted)
{
    // Every load saturates the accelerator: the empty result must be
    // distinguishable from "no inputs" via the omission count.
    size_t omitted = 0;
    auto points = sweepLoad(base(), ThreadingDesign::Sync, 1000, 1e9,
                            {2e6, 3e6, 4e6}, &omitted);
    EXPECT_TRUE(points.empty());
    EXPECT_EQ(omitted, 3u);

    size_t none = 99;
    auto empty = sweepLoad(base(), ThreadingDesign::Sync, 1000, 1e9,
                           {}, &none);
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(none, 0u);
}

} // namespace
} // namespace accel::model

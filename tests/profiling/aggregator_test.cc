/** @file Tests for trace aggregation. */

#include "profiling/aggregator.hh"

#include <gtest/gtest.h>

namespace accel::profiling {
namespace {

using workload::CopyOrigin;
using workload::Functionality;
using workload::LeafCategory;
using workload::MemoryLeaf;

CallTrace
trace(std::vector<std::string> frames, double cycles, double ipc = 1.0)
{
    CallTrace t;
    t.frames = std::move(frames);
    t.cycles = cycles;
    t.instructions = cycles * ipc;
    return t;
}

TEST(Aggregator, LeafBreakdownPercentages)
{
    Aggregator agg;
    agg.add(trace({"svc::app::handleRequest", "__memcpy_avx_unaligned"},
                  300));
    agg.add(trace({"svc::app::handleRequest", "std::map::find"}, 100));
    auto leaf = agg.leafBreakdown();
    EXPECT_NEAR(leaf[LeafCategory::Memory], 75.0, 1e-9);
    EXPECT_NEAR(leaf[LeafCategory::CLibraries], 25.0, 1e-9);
    EXPECT_DOUBLE_EQ(agg.totalCycles(), 400);
    EXPECT_EQ(agg.traceCount(), 2u);
}

TEST(Aggregator, FunctionalityBreakdown)
{
    Aggregator agg;
    agg.add(trace({"svc::log::appendLogEntry", "memcpy"}, 600));
    agg.add(trace({"svc::app::handleRequest", "memcpy"}, 400));
    auto func = agg.functionalityBreakdown();
    EXPECT_NEAR(func[Functionality::Logging], 60.0, 1e-9);
    EXPECT_NEAR(func[Functionality::ApplicationLogic], 40.0, 1e-9);
}

TEST(Aggregator, MemorySubBreakdownAndCopyOrigins)
{
    Aggregator agg;
    agg.add(trace({"folly::AsyncSSLSocket::performWrite",
                   "__memcpy_avx_unaligned"},
                  100));
    agg.add(trace({"svc::io::prepareBuffers", "__memcpy_avx_unaligned"},
                  300));
    agg.add(trace({"svc::app::handleRequest", "tc_malloc"}, 600));
    auto mem = agg.memoryBreakdown();
    EXPECT_NEAR(mem[MemoryLeaf::Copy], 40.0, 1e-9);
    EXPECT_NEAR(mem[MemoryLeaf::Allocation], 60.0, 1e-9);
    auto origins = agg.copyOriginBreakdown();
    EXPECT_NEAR(origins[CopyOrigin::SecureInsecureIO], 25.0, 1e-9);
    EXPECT_NEAR(origins[CopyOrigin::IOPrePostProcessing], 75.0, 1e-9);
}

TEST(Aggregator, IpcPerCategory)
{
    Aggregator agg;
    agg.add(trace({"svc::app::handleRequest", "memcpy"}, 100, 0.9));
    agg.add(trace({"svc::app::handleRequest", "memcpy"}, 300, 0.5));
    const auto &totals = agg.leafTotals();
    // Aggregate IPC = (90 + 150) / 400 = 0.6.
    EXPECT_NEAR(totals.at(LeafCategory::Memory).ipc(), 0.6, 1e-9);
}

TEST(Aggregator, KernelSyncClibSubBreakdowns)
{
    Aggregator agg;
    agg.add(trace({"svc::app::handleRequest", "finish_task_switch"},
                  100));
    agg.add(trace({"svc::app::handleRequest", "tcp_sendmsg"}, 300));
    agg.add(trace({"svc::app::handleRequest", "pthread_mutex_lock"},
                  50));
    agg.add(trace({"svc::app::handleRequest", "std::vector<int>::x"},
                  70));
    EXPECT_NEAR(agg.kernelBreakdown()[workload::KernelLeaf::Network],
                75.0, 1e-9);
    EXPECT_NEAR(agg.syncBreakdown()[workload::SyncLeaf::Mutex], 100.0,
                1e-9);
    EXPECT_NEAR(agg.clibBreakdown()[workload::ClibLeaf::Vectors], 100.0,
                1e-9);
}

TEST(Aggregator, EmptyBreakdownsAreEmpty)
{
    Aggregator agg;
    EXPECT_TRUE(agg.leafBreakdown().empty());
    EXPECT_TRUE(agg.memoryBreakdown().empty());
    EXPECT_TRUE(agg.copyOriginBreakdown().empty());
}

TEST(Aggregator, AddAllMatchesIndividualAdds)
{
    std::vector<CallTrace> traces = {
        trace({"svc::app::handleRequest", "memcpy"}, 10),
        trace({"svc::app::handleRequest", "std::sort"}, 20),
    };
    Aggregator a, b;
    a.addAll(traces);
    for (const auto &t : traces)
        b.add(t);
    EXPECT_DOUBLE_EQ(a.totalCycles(), b.totalCycles());
    EXPECT_EQ(a.leafBreakdown(), b.leafBreakdown());
}

} // namespace
} // namespace accel::profiling

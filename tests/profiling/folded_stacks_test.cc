/** @file Tests for folded-stack (flame graph) output. */

#include "profiling/folded_stacks.hh"

#include <gtest/gtest.h>

#include "profiling/sampler.hh"

namespace accel::profiling {
namespace {

CallTrace
trace(std::vector<std::string> frames, double cycles)
{
    CallTrace t;
    t.frames = std::move(frames);
    t.cycles = cycles;
    t.instructions = cycles;
    return t;
}

TEST(FoldedStacks, MergesIdenticalStacks)
{
    std::vector<CallTrace> traces = {
        trace({"main", "a", "leaf"}, 100),
        trace({"main", "a", "leaf"}, 50),
        trace({"main", "b", "leaf"}, 70),
    };
    auto folded = foldStacks(traces);
    ASSERT_EQ(folded.size(), 2u);
    EXPECT_EQ(folded[0].stack, "main;a;leaf");
    EXPECT_DOUBLE_EQ(folded[0].cycles, 150);
    EXPECT_EQ(folded[1].stack, "main;b;leaf");
}

TEST(FoldedStacks, SortedByCyclesThenName)
{
    std::vector<CallTrace> traces = {
        trace({"z"}, 10), trace({"a"}, 10), trace({"m"}, 20)};
    auto folded = foldStacks(traces);
    EXPECT_EQ(folded[0].stack, "m");
    EXPECT_EQ(folded[1].stack, "a"); // ties break alphabetically
    EXPECT_EQ(folded[2].stack, "z");
}

TEST(FoldedStacks, TextFormatIsFlamegraphInput)
{
    std::vector<CallTrace> traces = {trace({"main", "leaf"}, 42.4)};
    EXPECT_EQ(foldedStacksText(traces), "main;leaf 42\n");
}

TEST(FoldedStacks, MaxStacksTruncates)
{
    std::vector<CallTrace> traces = {
        trace({"a"}, 30), trace({"b"}, 20), trace({"c"}, 10)};
    std::string text = foldedStacksText(traces, 2);
    EXPECT_NE(text.find("a 30"), std::string::npos);
    EXPECT_NE(text.find("b 20"), std::string::npos);
    EXPECT_EQ(text.find("c 10"), std::string::npos);
}

TEST(FoldedStacks, EmptyInput)
{
    EXPECT_TRUE(foldStacks({}).empty());
    EXPECT_EQ(foldedStacksText({}), "");
}

TEST(FoldedStacks, SampledServiceProducesPlausibleGraph)
{
    TraceSampler sampler(
        workload::profile(workload::ServiceId::Cache1),
        workload::CpuGen::GenC, 31);
    auto folded = foldStacks(sampler.sampleMany(20000));
    ASSERT_GT(folded.size(), 10u);
    // Every stack roots at the thread entry.
    for (const auto &f : folded)
        EXPECT_EQ(f.stack.rfind("start_thread;", 0), 0u);
    // The heaviest stacks carry a sane share of total cycles.
    double total = 0, top = folded[0].cycles;
    for (const auto &f : folded)
        total += f.cycles;
    EXPECT_GT(top / total, 0.02);
    EXPECT_LT(top / total, 0.6);
}

} // namespace
} // namespace accel::profiling

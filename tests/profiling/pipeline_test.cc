/**
 * @file
 * End-to-end profiling pipeline tests: sample traces for each service,
 * run them through the taggers and aggregator, and check that the
 * recovered breakdowns reproduce the encoded characterization. This is
 * the library's equivalent of validating the paper's measurement path.
 */

#include <gtest/gtest.h>

#include "profiling/breakdown_report.hh"
#include "profiling/sampler.hh"

namespace accel::profiling {
namespace {

using workload::CpuGen;
using workload::Functionality;
using workload::LeafCategory;
using workload::ServiceId;

class PipelineTest : public testing::TestWithParam<ServiceId>
{
};

TEST_P(PipelineTest, RecoversLeafBreakdown)
{
    const auto &profile = workload::profile(GetParam());
    Aggregator agg = profileService(GetParam(), CpuGen::GenC, 42, 80000);
    auto recovered = agg.leafBreakdown();
    for (LeafCategory l : workload::allLeafCategories()) {
        double expected = profile.leafShare.at(l);
        double got = recovered.count(l) ? recovered[l] : 0.0;
        EXPECT_NEAR(got, expected, 2.5)
            << profile.name << " / " << toString(l);
    }
}

TEST_P(PipelineTest, RecoversFunctionalityBreakdown)
{
    const auto &profile = workload::profile(GetParam());
    Aggregator agg = profileService(GetParam(), CpuGen::GenC, 43, 80000);
    auto recovered = agg.functionalityBreakdown();
    for (Functionality f : workload::allFunctionalities()) {
        double expected = profile.functionalityShare.at(f);
        double got = recovered.count(f) ? recovered[f] : 0.0;
        EXPECT_NEAR(got, expected, 2.5)
            << profile.name << " / " << toString(f);
    }
}

TEST_P(PipelineTest, RecoversMemorySubBreakdown)
{
    const auto &profile = workload::profile(GetParam());
    Aggregator agg = profileService(GetParam(), CpuGen::GenC, 44, 80000);
    auto recovered = agg.memoryBreakdown();
    for (auto leaf : workload::allMemoryLeaves()) {
        double expected = profile.memoryShare.at(leaf);
        double got = recovered.count(leaf) ? recovered[leaf] : 0.0;
        EXPECT_NEAR(got, expected, 4.0)
            << profile.name << " / " << toString(leaf);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllServices, PipelineTest,
    testing::ValuesIn(workload::characterizedServices()),
    [](const testing::TestParamInfo<ServiceId> &info) {
        return workload::toString(info.param);
    });

TEST(Pipeline, RecoveredIpcMatchesPlatformTables)
{
    Aggregator agg =
        profileService(ServiceId::Cache1, CpuGen::GenC, 45, 100000);
    const auto &totals = agg.leafTotals();
    for (LeafCategory l : workload::ipcReportedLeafCategories()) {
        auto it = totals.find(l);
        ASSERT_NE(it, totals.end()) << toString(l);
        EXPECT_NEAR(it->second.ipc(),
                    workload::leafIpc(CpuGen::GenC, l), 0.02)
            << toString(l);
    }
}

TEST(Pipeline, ComparisonBlockRendersDiffs)
{
    const auto &profile = workload::profile(ServiceId::Web);
    Aggregator agg = profileService(ServiceId::Web, CpuGen::GenC, 46,
                                    20000);
    std::string block = comparisonBlock("Web leaves", profile.leafShare,
                                        agg.leafBreakdown());
    EXPECT_NE(block.find("paper %"), std::string::npos);
    EXPECT_NE(block.find("recovered %"), std::string::npos);
    EXPECT_NE(block.find("Memory"), std::string::npos);
}

TEST(Pipeline, ShareBlockRendersBars)
{
    const auto &profile = workload::profile(ServiceId::Cache2);
    std::string block =
        shareBlock("Cache2", profile.functionalityShare);
    EXPECT_NE(block.find("Cache2"), std::string::npos);
    EXPECT_NE(block.find("#"), std::string::npos);
}

} // namespace
} // namespace accel::profiling

/** @file Tests for the IPF joint distribution and trace sampler. */

#include "profiling/sampler.hh"

#include <gtest/gtest.h>

namespace accel::profiling {
namespace {

using workload::Functionality;
using workload::LeafCategory;
using workload::ServiceId;

TEST(Joint, MassSumsToOne)
{
    JointDistribution joint(workload::profile(ServiceId::Cache1));
    double total = 0;
    for (Functionality f : workload::allFunctionalities())
        total += joint.functionalityMass(f);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Joint, IpfMatchesBothMarginals)
{
    for (ServiceId id : workload::characterizedServices()) {
        const auto &profile = workload::profile(id);
        JointDistribution joint(profile);
        for (Functionality f : workload::allFunctionalities()) {
            EXPECT_NEAR(joint.functionalityMass(f),
                        profile.functionalityShare.at(f) / 100.0, 0.02)
                << toString(id) << "/" << toString(f);
        }
        for (LeafCategory l : workload::allLeafCategories()) {
            EXPECT_NEAR(joint.leafMass(l),
                        profile.leafShare.at(l) / 100.0, 0.02)
                << toString(id) << "/" << toString(l);
        }
    }
}

TEST(Joint, ZeroMarginalsStayZero)
{
    // Web has no feature extraction and no math leaves.
    JointDistribution joint(workload::profile(ServiceId::Web));
    EXPECT_DOUBLE_EQ(
        joint.functionalityMass(Functionality::FeatureExtraction), 0.0);
    EXPECT_DOUBLE_EQ(joint.leafMass(LeafCategory::Math), 0.0);
}

TEST(Joint, AffinityConcentratesDomainPairs)
{
    // For Cache1, SSL leaves should live almost entirely under secure
    // I/O, and ZSTD under compression.
    JointDistribution joint(workload::profile(ServiceId::Cache1));
    double ssl_total = joint.leafMass(LeafCategory::Ssl);
    double ssl_in_io = joint.mass(Functionality::SecureInsecureIO,
                                  LeafCategory::Ssl);
    EXPECT_GT(ssl_in_io / ssl_total, 0.7);
    double zstd_total = joint.leafMass(LeafCategory::Zstd);
    double zstd_in_comp =
        joint.mass(Functionality::Compression, LeafCategory::Zstd);
    EXPECT_GT(zstd_in_comp / zstd_total, 0.6);
}

TEST(Joint, SampleFrequenciesMatchMass)
{
    JointDistribution joint(workload::profile(ServiceId::Feed1));
    Rng rng(5);
    std::map<int, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        auto [f, l] = joint.sample(rng);
        counts[static_cast<int>(f) * 100 + static_cast<int>(l)]++;
    }
    double pred_math = joint.mass(Functionality::PredictionRanking,
                                  LeafCategory::Math);
    int key = static_cast<int>(Functionality::PredictionRanking) * 100 +
              static_cast<int>(LeafCategory::Math);
    EXPECT_NEAR(static_cast<double>(counts[key]) / n, pred_math, 0.01);
}

TEST(Sampler, TracesAreWellFormed)
{
    TraceSampler sampler(workload::profile(ServiceId::Cache1),
                         workload::CpuGen::GenC, 1);
    for (int i = 0; i < 1000; ++i) {
        CallTrace t = sampler.sample();
        ASSERT_GE(t.frames.size(), 3u);
        EXPECT_EQ(t.frames.front(), "start_thread");
        EXPECT_GT(t.cycles, 0);
        EXPECT_GT(t.instructions, 0);
        EXPECT_LT(t.ipc(), 4.0);
    }
}

TEST(Sampler, Deterministic)
{
    auto run = [] {
        TraceSampler s(workload::profile(ServiceId::Web),
                       workload::CpuGen::GenB, 99);
        std::string sig;
        for (int i = 0; i < 50; ++i)
            sig += s.sample().leafFrame() + ";";
        return sig;
    };
    EXPECT_EQ(run(), run());
}

TEST(Sampler, InstructionsFollowGenerationIpc)
{
    // The same seed on GenA vs GenC: GenC traces retire at least as
    // many instructions per cycle on average.
    auto mean_ipc = [](workload::CpuGen gen) {
        TraceSampler s(workload::profile(ServiceId::Cache1), gen, 7);
        double cycles = 0, instr = 0;
        for (int i = 0; i < 20000; ++i) {
            CallTrace t = s.sample();
            cycles += t.cycles;
            instr += t.instructions;
        }
        return instr / cycles;
    };
    EXPECT_GT(mean_ipc(workload::CpuGen::GenC),
              mean_ipc(workload::CpuGen::GenA));
}

TEST(Sampler, ManyConvenience)
{
    TraceSampler s(workload::profile(ServiceId::Ads1),
                   workload::CpuGen::GenC, 3);
    auto traces = s.sampleMany(128);
    EXPECT_EQ(traces.size(), 128u);
}

} // namespace
} // namespace accel::profiling

/** @file Tests for the leaf and functionality taggers. */

#include "profiling/taggers.hh"

#include <gtest/gtest.h>

namespace accel::profiling {
namespace {

using workload::ClibLeaf;
using workload::Functionality;
using workload::KernelLeaf;
using workload::LeafCategory;
using workload::MemoryLeaf;
using workload::SyncLeaf;

TEST(LeafTagger, MemoryFamily)
{
    LeafTagger t;
    EXPECT_EQ(t.tag("__memcpy_avx_unaligned"), LeafCategory::Memory);
    EXPECT_EQ(t.tag("tc_malloc"), LeafCategory::Memory);
    EXPECT_EQ(t.tag("tc_free"), LeafCategory::Memory);
    EXPECT_EQ(t.tag("free"), LeafCategory::Memory);
    EXPECT_EQ(t.tag("operator new"), LeafCategory::Memory);
    EXPECT_EQ(t.tag("__memset_avx2"), LeafCategory::Memory);
}

TEST(LeafTagger, KernelBeatsLookalikes)
{
    LeafTagger t;
    // futex must tag Kernel, not Synchronization's mutex rule.
    EXPECT_EQ(t.tag("futex_wait_queue_me"), LeafCategory::Kernel);
    EXPECT_EQ(t.tag("tcp_sendmsg"), LeafCategory::Kernel);
    EXPECT_EQ(t.tag("finish_task_switch"), LeafCategory::Kernel);
    EXPECT_EQ(t.tag("ep_poll"), LeafCategory::Kernel);
    EXPECT_EQ(t.tag("clear_page_erms"), LeafCategory::Kernel);
    EXPECT_EQ(t.tag("do_syscall_64"), LeafCategory::Kernel);
}

TEST(LeafTagger, DomainLibraries)
{
    LeafTagger t;
    EXPECT_EQ(t.tag("ZSTD_compressBlock_fast"), LeafCategory::Zstd);
    EXPECT_EQ(t.tag("aes_ctr_encrypt_blocks"), LeafCategory::Ssl);
    EXPECT_EQ(t.tag("EVP_EncryptUpdate"), LeafCategory::Ssl);
    EXPECT_EQ(t.tag("SHA256_Update"), LeafCategory::Hashing);
    EXPECT_EQ(t.tag("folly::hash::fnv64"), LeafCategory::Hashing);
    EXPECT_EQ(t.tag("mkl_blas_avx512_sgemm"), LeafCategory::Math);
    EXPECT_EQ(t.tag("_mm512_fmadd_ps_loop"), LeafCategory::Math);
}

TEST(LeafTagger, SynchronizationBeforeClib)
{
    LeafTagger t;
    // std::atomic contains "std::" but must tag Synchronization.
    EXPECT_EQ(t.tag("std::atomic<long>::fetch_add"),
              LeafCategory::Synchronization);
    EXPECT_EQ(t.tag("pthread_mutex_lock"),
              LeafCategory::Synchronization);
    EXPECT_EQ(t.tag("folly::MicroSpinLock::lock"),
              LeafCategory::Synchronization);
}

TEST(LeafTagger, ClibAndFallback)
{
    LeafTagger t;
    EXPECT_EQ(t.tag("std::vector<float>::push_back"),
              LeafCategory::CLibraries);
    EXPECT_EQ(t.tag("std::unordered_map::find"),
              LeafCategory::CLibraries);
    EXPECT_EQ(t.tag("operator=="), LeafCategory::CLibraries);
    EXPECT_EQ(t.tag("svc_opaque_leaf"), LeafCategory::Miscellaneous);
}

TEST(LeafTagger, MemorySubLeaves)
{
    LeafTagger t;
    EXPECT_EQ(*t.memoryLeaf("__memcpy_avx_unaligned"), MemoryLeaf::Copy);
    EXPECT_EQ(*t.memoryLeaf("__memmove_avx_unaligned"),
              MemoryLeaf::Move);
    EXPECT_EQ(*t.memoryLeaf("__memset_avx2"), MemoryLeaf::Set);
    EXPECT_EQ(*t.memoryLeaf("__memcmp_sse4_1"), MemoryLeaf::Compare);
    EXPECT_EQ(*t.memoryLeaf("tc_malloc"), MemoryLeaf::Allocation);
    EXPECT_EQ(*t.memoryLeaf("tc_free"), MemoryLeaf::Free);
    EXPECT_FALSE(t.memoryLeaf("std::sort").has_value());
}

TEST(LeafTagger, KernelSubLeaves)
{
    LeafTagger t;
    EXPECT_EQ(*t.kernelLeaf("finish_task_switch"),
              KernelLeaf::Scheduler);
    EXPECT_EQ(*t.kernelLeaf("ep_poll"), KernelLeaf::EventHandling);
    EXPECT_EQ(*t.kernelLeaf("tcp_sendmsg"), KernelLeaf::Network);
    EXPECT_EQ(*t.kernelLeaf("futex_wait_queue_me"),
              KernelLeaf::Synchronization);
    EXPECT_EQ(*t.kernelLeaf("clear_page_erms"),
              KernelLeaf::MemoryManagement);
    EXPECT_FALSE(t.kernelLeaf("memcpy").has_value());
}

TEST(LeafTagger, SyncSubLeaves)
{
    LeafTagger t;
    EXPECT_EQ(*t.syncLeaf("std::atomic<long>::fetch_add"),
              SyncLeaf::CppAtomics);
    EXPECT_EQ(*t.syncLeaf("pthread_mutex_lock"), SyncLeaf::Mutex);
    EXPECT_EQ(*t.syncLeaf("__atomic_compare_exchange_16"),
              SyncLeaf::CompareExchangeSwap);
    EXPECT_EQ(*t.syncLeaf("folly::MicroSpinLock::lock"),
              SyncLeaf::SpinLock);
}

TEST(LeafTagger, ClibSubLeaves)
{
    LeafTagger t;
    EXPECT_EQ(*t.clibLeaf("std::sort"), ClibLeaf::StdAlgorithms);
    EXPECT_EQ(*t.clibLeaf("std::vector<float>::~vector"),
              ClibLeaf::ConstructorsDestructors);
    EXPECT_EQ(*t.clibLeaf("std::string::append"), ClibLeaf::Strings);
    EXPECT_EQ(*t.clibLeaf("std::unordered_map::find"),
              ClibLeaf::HashTables);
    EXPECT_EQ(*t.clibLeaf("std::vector<float>::push_back"),
              ClibLeaf::Vectors);
    EXPECT_EQ(*t.clibLeaf("std::map::find"), ClibLeaf::Trees);
    EXPECT_EQ(*t.clibLeaf("operator=="), ClibLeaf::OperatorOverride);
}

CallTrace
trace(std::vector<std::string> frames)
{
    CallTrace t;
    t.frames = std::move(frames);
    t.cycles = 100;
    t.instructions = 80;
    return t;
}

TEST(FunctionalityTagger, MarkersResolve)
{
    FunctionalityTagger t;
    EXPECT_EQ(t.tag(trace({"start_thread",
                           "folly::AsyncSSLSocket::performWrite",
                           "aes_ctr_encrypt_blocks"})),
              Functionality::SecureInsecureIO);
    EXPECT_EQ(t.tag(trace({"svc::io::prepareBuffers", "memcpy"})),
              Functionality::IOPrePostProcessing);
    EXPECT_EQ(t.tag(trace({"apache::thrift::BinaryProtocol::serialize",
                           "memcpy"})),
              Functionality::Serialization);
    EXPECT_EQ(t.tag(trace({"ml::features::extractFeatures",
                           "std::vector<float>::push_back"})),
              Functionality::FeatureExtraction);
    EXPECT_EQ(t.tag(trace({"ml::inference::predictRelevance",
                           "mkl_blas_avx512_sgemm"})),
              Functionality::PredictionRanking);
    EXPECT_EQ(t.tag(trace({"svc::log::appendLogEntry", "memcpy"})),
              Functionality::Logging);
    EXPECT_EQ(t.tag(trace({"svc::compress::compressPayload",
                           "ZSTD_compressBlock_fast"})),
              Functionality::Compression);
    EXPECT_EQ(t.tag(trace({"svc::app::handleRequest", "std::map::find"})),
              Functionality::ApplicationLogic);
    EXPECT_EQ(t.tag(trace({"folly::ThreadPoolExecutor::runTask",
                           "pthread_mutex_lock"})),
              Functionality::ThreadPoolManagement);
}

TEST(FunctionalityTagger, OutermostMarkerWins)
{
    // A logging path that compresses its payload is still Logging.
    FunctionalityTagger t;
    EXPECT_EQ(t.tag(trace({"svc::log::appendLogEntry",
                           "svc::compress::compressPayload",
                           "ZSTD_compressBlock_fast"})),
              Functionality::Logging);
}

TEST(FunctionalityTagger, UnknownFallsToMiscellaneous)
{
    FunctionalityTagger t;
    EXPECT_EQ(t.tag(trace({"start_thread", "mystery_function"})),
              Functionality::Miscellaneous);
}

TEST(CallTrace, LeafAndIpc)
{
    CallTrace t = trace({"a", "b", "leaf_fn"});
    EXPECT_EQ(t.leafFrame(), "leaf_fn");
    EXPECT_NEAR(t.ipc(), 0.8, 1e-12);
}

} // namespace
} // namespace accel::profiling

/**
 * @file
 * Randomized property suite: the timer-wheel EventQueue must be
 * observationally identical to ReferenceEventQueue (the pre-
 * optimization pure-heap queue kept as an executable specification).
 *
 * For seeded random mixes of schedule / scheduleIn / scheduleTimer /
 * scheduleTimerIn / cancelTimer / runNext / runUntil — including
 * callbacks that schedule and cancel reentrantly — both queues must
 * produce the identical callback execution sequence, identical
 * TimerIds, identical cancelTimer results, and identical
 * now()/processed()/activeTimers()/pendingLive()/empty() trajectories.
 * pending() and compactions() are deliberately NOT compared: the two
 * queues reclaim cancelled slots on different schedules, which is an
 * allowed implementation difference.
 *
 * Test names stay under `EventQueueProperty.` — CI runs exactly this
 * prefix under ThreadSanitizer.
 */

#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/reference_event_queue.hh"
#include "util/rng.hh"

namespace accel::sim {
namespace {

/** One pre-generated operation, applied identically to both queues. */
struct Op
{
    enum Kind : std::uint32_t
    {
        kSchedule,
        kScheduleIn,
        kScheduleTimer,
        kScheduleTimerIn,
        kCancel,
        kRunNext,
        kRunUntil,
    };
    Kind kind;
    Tick delay;        //!< delay (or run-until span) operand
    int priority;      //!< scheduling priority operand
    std::uint64_t pick; //!< selects which recorded timer to cancel
};

/** Labels for reentrantly scheduled events live above this floor. */
constexpr std::uint64_t kChildLabel = 1'000'000;

/**
 * Everything observable one queue produced while replaying an op list.
 * Two queues agree iff their Observed compare equal field-by-field.
 */
struct Observed
{
    std::vector<std::uint64_t> log;     //!< labels in execution order
    std::vector<TimerId> timers;        //!< every TimerId handed out
    std::vector<bool> cancelResults;    //!< cancelTimer return values
    // (now, processed, activeTimers, pendingLive, empty) after each op
    std::vector<std::tuple<Tick, std::uint64_t, size_t, size_t, bool>>
        trajectory;
};

/**
 * Replays an op list against @p Queue (EventQueue or the reference),
 * recording everything observable. Callbacks act deterministically on
 * their label, so both queues see the same reentrant behaviour — as
 * long as they execute callbacks in the same order, which is exactly
 * the property under test.
 */
template <typename Queue>
class Script
{
  public:
    Observed
    run(const std::vector<Op> &ops)
    {
        for (const Op &op : ops) {
            apply(op);
            checkpoint();
        }
        q_.runAll();
        checkpoint();
        return std::move(seen_);
    }

  private:
    /** Schedulable callback: 16 bytes, fits any queue's SBO budget. */
    struct Cb
    {
        Script *script;
        std::uint64_t label;
        void operator()() const { script->fire(label); }
    };

    Cb event(std::uint64_t label) { return Cb{this, label}; }

    void
    apply(const Op &op)
    {
        switch (op.kind) {
        case Op::kSchedule:
            q_.schedule(q_.now() + op.delay, event(nextLabel_++),
                        op.priority);
            break;
        case Op::kScheduleIn:
            q_.scheduleIn(op.delay, event(nextLabel_++), op.priority);
            break;
        case Op::kScheduleTimer:
            seen_.timers.push_back(q_.scheduleTimer(
                q_.now() + op.delay, event(nextLabel_++), op.priority));
            break;
        case Op::kScheduleTimerIn:
            seen_.timers.push_back(q_.scheduleTimerIn(
                op.delay, event(nextLabel_++), op.priority));
            break;
        case Op::kCancel:
            if (!seen_.timers.empty()) {
                // May be live, already fired, or already cancelled —
                // all three must answer identically on both queues.
                TimerId id =
                    seen_.timers[op.pick % seen_.timers.size()];
                seen_.cancelResults.push_back(q_.cancelTimer(id));
            }
            break;
        case Op::kRunNext:
            q_.runNext();
            break;
        case Op::kRunUntil:
            q_.runUntil(q_.now() + op.delay);
            break;
        }
    }

    /** Runs event @p label: log, then act deterministically on it. */
    void
    fire(std::uint64_t label)
    {
        seen_.log.push_back(label);
        if (label >= kChildLabel)
            return; // children do not recurse
        if (label % 5 == 0) {
            // Reentrant plain event, possibly into the slot the
            // queue is draining right now.
            q_.schedule(q_.now() + (label * 37) % 190,
                        event(kChildLabel + label),
                        static_cast<int>(label % 3) - 1);
        }
        if (label % 11 == 5) {
            seen_.timers.push_back(q_.scheduleTimer(
                q_.now() + 64 + (label * 13) % 4096,
                event(kChildLabel * 2 + label)));
        }
        if (label % 7 == 3 && !seen_.timers.empty()) {
            TimerId id =
                seen_.timers[(label * 31) % seen_.timers.size()];
            seen_.cancelResults.push_back(q_.cancelTimer(id));
        }
    }

    void
    checkpoint()
    {
        seen_.trajectory.emplace_back(q_.now(), q_.processed(),
                                      q_.activeTimers(),
                                      q_.pendingLive(), q_.empty());
    }

    Queue q_;
    Observed seen_;
    std::uint64_t nextLabel_ = 1;
};

/** Delay distribution that straddles the wheel/heap boundary. */
Tick
randomDelay(Rng &rng)
{
    switch (rng.next() % 4) {
    case 0: // same-slot and near-future churn
        return rng.next() % 256;
    case 1: // anywhere inside the wheel window
        return rng.next() % EventQueue::kWheelHorizon;
    case 2: // right at the wheel/heap eligibility boundary
        return EventQueue::kWheelHorizon - 2 + rng.next() % 5;
    default: // far future: overflow heap
        return EventQueue::kWheelHorizon +
               rng.next() % (EventQueue::kWheelHorizon * 3);
    }
}

std::vector<Op>
makeOps(std::uint64_t seed, bool cancelHeavy)
{
    Rng rng(seed, /*stream=*/29);
    std::vector<Op> ops;
    for (int i = 0; i < 400; ++i) {
        Op op{};
        const std::uint64_t roll = rng.next() % (cancelHeavy ? 10 : 8);
        if (roll < 2) {
            op.kind = Op::kSchedule;
        } else if (roll == 2) {
            op.kind = Op::kScheduleIn;
        } else if (roll == 3) {
            op.kind = Op::kScheduleTimer;
        } else if (roll == 4) {
            op.kind = Op::kScheduleTimerIn;
        } else if (roll == 5) {
            op.kind = Op::kCancel;
        } else if (roll == 6) {
            op.kind = Op::kRunNext;
        } else if (roll == 7) {
            op.kind = Op::kRunUntil;
        } else {
            // cancelHeavy extras: far timers armed then mostly
            // cancelled — the compaction-triggering workload.
            op.kind = roll == 8 ? Op::kScheduleTimerIn : Op::kCancel;
        }
        op.delay = randomDelay(rng);
        op.priority = static_cast<int>(rng.next() % 5) - 2;
        op.pick = rng.next();
        ops.push_back(op);
    }
    return ops;
}

void
expectSameBehaviour(const std::vector<Op> &ops, std::uint64_t seed)
{
    Observed wheel = Script<EventQueue>{}.run(ops);
    Observed oracle = Script<ReferenceEventQueue>{}.run(ops);
    EXPECT_EQ(wheel.log, oracle.log) << "seed " << seed;
    EXPECT_EQ(wheel.timers, oracle.timers) << "seed " << seed;
    EXPECT_EQ(wheel.cancelResults, oracle.cancelResults)
        << "seed " << seed;
    EXPECT_EQ(wheel.trajectory, oracle.trajectory) << "seed " << seed;
}

TEST(EventQueueProperty, RandomOpMixMatchesReference)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed)
        expectSameBehaviour(makeOps(seed, /*cancelHeavy=*/false), seed);
}

TEST(EventQueueProperty, CancelHeavyMixMatchesReference)
{
    // Arm-then-cancel dominated mixes drive both queues through their
    // (different) compaction machinery; observables must still agree.
    for (std::uint64_t seed = 100; seed <= 115; ++seed)
        expectSameBehaviour(makeOps(seed, /*cancelHeavy=*/true), seed);
}

} // namespace
} // namespace accel::sim

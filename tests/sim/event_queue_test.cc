/** @file Tests for the discrete-event engine. */

#include "sim/event_queue.hh"

#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::sim {
namespace {

TEST(EventQueue, RunsInTimestampOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, /*priority=*/1);
    eq.schedule(5, [&] { order.push_back(2); }, /*priority=*/-1);
    eq.schedule(5, [&] { order.push_back(3); }, /*priority=*/1);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, SchedulingIntoPastRejected)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    EXPECT_THROW(eq.schedule(5, [] {}), FatalError);
    EXPECT_NO_THROW(eq.schedule(10, [] {})); // same tick allowed
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {});
    eq.runAll();
    eq.scheduleIn(50, [&] { seen = eq.now(); });
    eq.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(1, [&] { ++fired; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
    EXPECT_EQ(eq.processed(), 2u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runNext());
}

TEST(EventQueue, EmptyCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1, Callback{}), PanicError);
}

TEST(EventQueue, DeterministicReplay)
{
    auto run = [] {
        EventQueue eq;
        std::vector<Tick> ticks;
        for (int i = 0; i < 100; ++i) {
            eq.schedule((i * 37) % 64, [&, i] {
                ticks.push_back(eq.now() * 1000 + i);
            });
        }
        eq.runAll();
        return ticks;
    };
    EXPECT_EQ(run(), run());
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    for (int i = 0; i < 10000; ++i) {
        eq.schedule((i * 7919) % 5000, [&] {
            EXPECT_GE(eq.now(), last);
            last = eq.now();
        });
    }
    eq.runAll();
    EXPECT_EQ(eq.processed(), 10000u);
}

} // namespace
} // namespace accel::sim

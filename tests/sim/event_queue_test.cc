/** @file Tests for the discrete-event engine. */

#include "sim/event_queue.hh"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::sim {
namespace {

/** Callable that counts how many times it is copied and invoked. */
struct CountingCallback
{
    std::shared_ptr<int> copies;
    std::shared_ptr<int> fired;

    CountingCallback(std::shared_ptr<int> c, std::shared_ptr<int> f)
        : copies(std::move(c)), fired(std::move(f))
    {}
    CountingCallback(const CountingCallback &other)
        : copies(other.copies), fired(other.fired)
    {
        ++*copies;
    }
    CountingCallback(CountingCallback &&) noexcept = default;
    CountingCallback &operator=(const CountingCallback &) = delete;
    CountingCallback &operator=(CountingCallback &&) noexcept = default;

    void operator()() const { ++*fired; }
};

TEST(EventQueue, RunsInTimestampOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, /*priority=*/1);
    eq.schedule(5, [&] { order.push_back(2); }, /*priority=*/-1);
    eq.schedule(5, [&] { order.push_back(3); }, /*priority=*/1);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, SchedulingIntoPastRejected)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    EXPECT_THROW(eq.schedule(5, [] {}), FatalError);
    EXPECT_NO_THROW(eq.schedule(10, [] {})); // same tick allowed
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {});
    eq.runAll();
    eq.scheduleIn(50, [&] { seen = eq.now(); });
    eq.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(1, [&] { ++fired; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
    EXPECT_EQ(eq.processed(), 2u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runNext());
}

TEST(EventQueue, EmptyCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1, Callback{}), PanicError);
}

TEST(EventQueue, DeterministicReplay)
{
    auto run = [] {
        EventQueue eq;
        std::vector<Tick> ticks;
        for (int i = 0; i < 100; ++i) {
            eq.schedule((i * 37) % 64, [&, i] {
                ticks.push_back(eq.now() * 1000 + i);
            });
        }
        eq.runAll();
        return ticks;
    };
    EXPECT_EQ(run(), run());
}

TEST(EventQueue, ExecutionDoesNotCopyCallbacks)
{
    // The acknowledged hot-path bug: priority_queue::top() forced a
    // copy of every Event's std::function (and captured shared_ptrs)
    // on every pop. Moving out of the heap must execute events without
    // a single callback copy after scheduling.
    EventQueue eq;
    auto copies = std::make_shared<int>(0);
    auto fired = std::make_shared<int>(0);
    for (int i = 0; i < 64; ++i) {
        eq.schedule(static_cast<Tick>((i * 31) % 16),
                    Callback(CountingCallback(copies, fired)));
    }
    int copies_after_scheduling = *copies;
    eq.runAll();
    EXPECT_EQ(*fired, 64);
    EXPECT_EQ(*copies, copies_after_scheduling)
        << "popping the heap copied callback state";
}

TEST(EventQueue, CapturedSharedStateReleasedAfterRun)
{
    EventQueue eq;
    auto payload = std::make_shared<int>(42);
    std::weak_ptr<int> watch = payload;
    eq.schedule(1, [payload] { (void)*payload; });
    payload.reset();
    EXPECT_FALSE(watch.expired()); // alive inside the queue
    eq.runAll();
    EXPECT_TRUE(watch.expired()); // not retained after execution
}

TEST(EventQueue, ReserveDoesNotDisturbOrdering)
{
    EventQueue eq;
    eq.reserve(1024);
    std::vector<int> order;
    eq.schedule(3, [&] { order.push_back(3); });
    eq.schedule(1, [&] { order.push_back(1); });
    eq.schedule(2, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TimerFiresLikeAnEvent)
{
    EventQueue eq;
    Tick seen = 0;
    TimerId id = eq.scheduleTimerIn(25, [&] { seen = eq.now(); });
    EXPECT_NE(id, kInvalidTimer);
    EXPECT_EQ(eq.activeTimers(), 1u);
    eq.runAll();
    EXPECT_EQ(seen, 25u);
    EXPECT_EQ(eq.activeTimers(), 0u);
}

TEST(EventQueue, CancelledTimerNeverRuns)
{
    EventQueue eq;
    int fired = 0;
    TimerId id = eq.scheduleTimer(10, [&] { ++fired; });
    EXPECT_TRUE(eq.cancelTimer(id));
    eq.schedule(20, [&] { fired += 100; });
    eq.runAll();
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.activeTimers(), 0u);
}

TEST(EventQueue, CancelledTimerDoesNotAdvanceClockOrCount)
{
    EventQueue eq;
    TimerId id = eq.scheduleTimer(10, [] {});
    eq.cancelTimer(id);
    eq.schedule(30, [] {});
    eq.runAll();
    // The cancelled slot drains silently: it neither executes nor
    // becomes the clock's resting point.
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.processed(), 1u);
}

TEST(EventQueue, CancelReturnsFalseWhenNotLive)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancelTimer(kInvalidTimer));
    EXPECT_FALSE(eq.cancelTimer(12345)); // never issued

    TimerId id = eq.scheduleTimer(5, [] {});
    EXPECT_TRUE(eq.cancelTimer(id));
    EXPECT_FALSE(eq.cancelTimer(id)); // already cancelled

    TimerId fired = eq.scheduleTimer(6, [] {});
    eq.runAll();
    EXPECT_FALSE(eq.cancelTimer(fired)); // already fired
}

TEST(EventQueue, PlainEventsAreNotCancellable)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    // A plain event's (private) sequence would be 1; cancelling that id
    // must not touch it.
    EXPECT_FALSE(eq.cancelTimer(1));
    eq.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, TimerAndEventTieBreaksBySchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleTimer(10, [&] { order.push_back(1); });
    eq.schedule(10, [&] { order.push_back(2); });
    eq.scheduleTimer(10, [&] { order.push_back(3); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelFromInsideAnEarlierEvent)
{
    // The deadline-vs-completion race: whichever same-tick rival runs
    // first cancels the other, deterministically by sequence.
    EventQueue eq;
    int fired = 0;
    TimerId timer = eq.scheduleTimer(10, [&] { fired += 1; });
    eq.schedule(10, [&] {
        fired += 10;
        EXPECT_FALSE(eq.cancelTimer(timer)); // timer already fired
    });
    eq.runAll();
    EXPECT_EQ(fired, 11);

    EventQueue eq2;
    int fired2 = 0;
    TimerId t2 = kInvalidTimer;
    eq2.schedule(10, [&] {
        fired2 += 10;
        EXPECT_TRUE(eq2.cancelTimer(t2)); // event won: timer dies
    });
    t2 = eq2.scheduleTimer(10, [&] { fired2 += 1; });
    eq2.runAll();
    EXPECT_EQ(fired2, 10);
}

TEST(EventQueue, RunUntilDrainsCancelledSlotsWithinLimitOnly)
{
    EventQueue eq;
    int fired = 0;
    TimerId id = eq.scheduleTimer(10, [&] { ++fired; });
    eq.cancelTimer(id);
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u); // the tick-30 event survived
    eq.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancellationStateStaysBounded)
{
    // Both bookkeeping sets must drain as the heap does — scheduling
    // and cancelling many timers leaves no residue.
    EventQueue eq;
    for (int round = 0; round < 100; ++round) {
        std::vector<TimerId> ids;
        for (int i = 0; i < 10; ++i)
            ids.push_back(eq.scheduleTimerIn(5 + i, [] {}));
        for (size_t i = 0; i < ids.size(); i += 2)
            eq.cancelTimer(ids[i]);
        eq.runAll();
        EXPECT_EQ(eq.activeTimers(), 0u);
        EXPECT_EQ(eq.pending(), 0u);
    }
}

TEST(EventQueue, CompactionKeepsPendingBounded)
{
    // Hedged offloads cancel one timer per offload without the clock
    // ever draining past them. Without compaction the heap would hold
    // every cancelled slot until its tick; with it, pending() stays
    // O(live + kCompactMinCancelled) however many timers were ever
    // cancelled.
    EventQueue eq;
    const Tick kFar = 1'000'000'000;
    const size_t kLive = 10;
    std::vector<TimerId> live;
    for (size_t i = 0; i < kLive; ++i)
        live.push_back(eq.scheduleTimer(kFar + i, [] {}));

    for (int i = 0; i < 10'000; ++i) {
        TimerId id = eq.scheduleTimer(kFar / 2 + i, [] {});
        eq.cancelTimer(id);
        EXPECT_LE(eq.pending(),
                  kLive + 2 * EventQueue::kCompactMinCancelled)
            << "cancelled slots accumulated at i=" << i;
    }
    EXPECT_GT(eq.compactions(), 0u);
    EXPECT_EQ(eq.activeTimers(), live.size());

    // The surviving timers still fire.
    eq.runAll();
    EXPECT_EQ(eq.activeTimers(), 0u);
    EXPECT_EQ(eq.processed(), live.size());
}

TEST(EventQueue, CompactionPreservesExecutionOrder)
{
    // Interleave plain events, live timers, and cancelled timers so a
    // compaction rebuild happens mid-stream; execution order must be
    // the same total (when, priority, sequence) order as an identical
    // queue that never compacts (no cancellations).
    auto run = [](bool withCancelled) {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 400; ++i) {
            Tick when = 1000 + (i * 37) % 500;
            eq.schedule(when, [&order, i] { order.push_back(i); });
            eq.scheduleTimer(when, [&order, i] {
                order.push_back(10'000 + i);
            });
            if (withCancelled) {
                TimerId id = eq.scheduleTimer(when + 1, [&order, i] {
                    order.push_back(-i);
                });
                eq.cancelTimer(id);
            }
        }
        eq.runAll();
        return order;
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(EventQueue, NoCompactionBelowFloor)
{
    // A handful of cancellations must not trigger rebuilds — the floor
    // keeps small queues on the zero-overhead path.
    EventQueue eq;
    for (size_t i = 0; i < EventQueue::kCompactMinCancelled - 1; ++i) {
        TimerId id = eq.scheduleTimer(100 + i, [] {});
        eq.cancelTimer(id);
    }
    EXPECT_EQ(eq.compactions(), 0u);
    eq.runAll();
}

TEST(EventQueue, ScheduleInOverflowRejectedWithFields)
{
    // Regression: now_ + delay used to wrap silently in uint64
    // arithmetic, either tripping the misleading "scheduling into the
    // past" error or scheduling at a bogus near tick. It must fail
    // with a message naming the overflowing fields.
    EventQueue eq;
    eq.schedule(1000, [] {});
    eq.runAll();
    const Tick kMax = std::numeric_limits<Tick>::max();
    try {
        eq.scheduleIn(kMax - eq.now() + 1, [] {});
        FAIL() << "overflowing scheduleIn did not throw";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("scheduleIn"), std::string::npos) << msg;
        EXPECT_NE(msg.find("overflows"), std::string::npos) << msg;
        EXPECT_NE(msg.find("now=1000"), std::string::npos) << msg;
        EXPECT_NE(msg.find("delay="), std::string::npos) << msg;
    }
    // The largest non-overflowing delay is fine.
    EXPECT_NO_THROW(eq.scheduleIn(kMax - eq.now(), [] {}));
}

TEST(EventQueue, ScheduleTimerInOverflowRejectedWithFields)
{
    EventQueue eq;
    eq.schedule(7, [] {});
    eq.runAll();
    const Tick kMax = std::numeric_limits<Tick>::max();
    try {
        eq.scheduleTimerIn(kMax, [] {});
        FAIL() << "overflowing scheduleTimerIn did not throw";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("scheduleTimerIn"), std::string::npos) << msg;
        EXPECT_NE(msg.find("now=7"), std::string::npos) << msg;
        EXPECT_NE(msg.find("delay="), std::string::npos) << msg;
    }
    // No timer was issued and no slot leaked by the failed call.
    EXPECT_EQ(eq.activeTimers(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, PendingLiveExcludesCancelledSlots)
{
    // Regression: pending() counts cancelled slots (documented), and
    // callers polling it for progress overcount; pendingLive() is the
    // executable-event count.
    EventQueue eq;
    eq.schedule(10, [] {});
    TimerId a = eq.scheduleTimer(20, [] {});
    TimerId b = eq.scheduleTimer(30, [] {});
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_EQ(eq.pendingLive(), 3u);

    eq.cancelTimer(a);
    EXPECT_EQ(eq.pending(), 3u); // slot still queued
    EXPECT_EQ(eq.pendingLive(), 2u);

    eq.cancelTimer(b);
    EXPECT_EQ(eq.pendingLive(), 1u);

    eq.runAll();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.pendingLive(), 0u);
}

TEST(EventQueue, PendingLiveExcludesCancelledHeapSlots)
{
    // Same accounting across the wheel horizon (overflow-heap path),
    // including after a compaction reclaims the slots.
    EventQueue eq;
    const Tick kFar = EventQueue::kWheelHorizon * 4;
    std::vector<TimerId> ids;
    for (size_t i = 0; i < 3 * EventQueue::kCompactMinCancelled; ++i)
        ids.push_back(eq.scheduleTimer(kFar + i, [] {}));
    for (TimerId id : ids)
        eq.cancelTimer(id);
    EXPECT_EQ(eq.pendingLive(), 0u);
    EXPECT_EQ(eq.pending() - eq.pendingLive(),
              eq.pending()); // everything queued is cancelled
    eq.runAll();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.pendingLive(), 0u);
}

TEST(EventQueue, WheelHorizonBoundaryOrdering)
{
    // Events straddling the wheel/heap boundary must still run in
    // global timestamp order, including events that start beyond the
    // horizon (heap) and are overtaken by the advancing clock.
    EventQueue eq;
    std::vector<Tick> order;
    auto record = [&] { order.push_back(eq.now()); };
    const Tick kH = EventQueue::kWheelHorizon;
    for (Tick t : {kH - 1, kH, kH + 1, Tick{1}, kH * 2,
                   kH - EventQueue::kSlotWidth})
        eq.schedule(t, record);
    eq.runAll();
    std::vector<Tick> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(order, sorted);
    EXPECT_EQ(order.size(), 6u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    for (int i = 0; i < 10000; ++i) {
        eq.schedule((i * 7919) % 5000, [&] {
            EXPECT_GE(eq.now(), last);
            last = eq.now();
        });
    }
    eq.runAll();
    EXPECT_EQ(eq.processed(), 10000u);
}

} // namespace
} // namespace accel::sim

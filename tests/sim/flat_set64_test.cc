/** @file Tests for the flat timer-id set behind EventQueue bookkeeping. */

#include "sim/flat_set64.hh"

#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::sim {
namespace {

TEST(FlatSet64, BasicMembership)
{
    FlatSet64 set;
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.contains(1));
    EXPECT_EQ(set.erase(1), 0u);

    EXPECT_TRUE(set.insert(1));
    EXPECT_FALSE(set.insert(1)); // duplicate
    EXPECT_TRUE(set.contains(1));
    EXPECT_EQ(set.size(), 1u);

    EXPECT_EQ(set.erase(1), 1u);
    EXPECT_EQ(set.erase(1), 0u);
    EXPECT_FALSE(set.contains(1));
    EXPECT_TRUE(set.empty());
}

TEST(FlatSet64, KeyZeroRejected)
{
    FlatSet64 set;
    EXPECT_THROW(set.insert(0), FatalError);
    // Queries treat 0 as trivially absent instead of throwing: the
    // queue probes with ids that may legitimately be kInvalidTimer.
    EXPECT_FALSE(set.contains(0));
    EXPECT_EQ(set.erase(0), 0u);
}

TEST(FlatSet64, ClearRetainsNothing)
{
    FlatSet64 set;
    for (std::uint64_t k = 1; k <= 100; ++k)
        set.insert(k);
    set.clear();
    EXPECT_TRUE(set.empty());
    for (std::uint64_t k = 1; k <= 100; ++k)
        EXPECT_FALSE(set.contains(k)) << k;
    // Still usable after clear.
    EXPECT_TRUE(set.insert(7));
    EXPECT_TRUE(set.contains(7));
}

TEST(FlatSet64, SequentialIdsLikeTimerSequences)
{
    // The queue feeds monotonically increasing sequence numbers — the
    // worst case for a weak hash. All inserts/erases must stay exact.
    FlatSet64 set;
    for (std::uint64_t k = 1; k <= 10'000; ++k)
        ASSERT_TRUE(set.insert(k));
    EXPECT_EQ(set.size(), 10'000u);
    for (std::uint64_t k = 1; k <= 10'000; k += 2)
        ASSERT_EQ(set.erase(k), 1u);
    for (std::uint64_t k = 1; k <= 10'000; ++k)
        ASSERT_EQ(set.contains(k), k % 2 == 0) << k;
}

TEST(FlatSet64, RandomizedCrossCheckAgainstUnorderedSet)
{
    // Property check: FlatSet64 must agree with std::unordered_set
    // under a random schedule of inserts, erases (hit and miss), and
    // membership probes — including backward-shift deletion chains.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Rng rng(seed, /*stream=*/13);
        FlatSet64 flat;
        std::unordered_set<std::uint64_t> ref;
        for (int step = 0; step < 20'000; ++step) {
            // Small key range to force collisions and probe chains.
            const std::uint64_t key = 1 + rng.next() % 512;
            switch (rng.next() % 3) {
            case 0:
                ASSERT_EQ(flat.insert(key), ref.insert(key).second);
                break;
            case 1:
                ASSERT_EQ(flat.erase(key), ref.erase(key));
                break;
            default:
                ASSERT_EQ(flat.contains(key), ref.count(key) == 1);
                break;
            }
            ASSERT_EQ(flat.size(), ref.size());
        }
        for (std::uint64_t key = 1; key <= 512; ++key)
            ASSERT_EQ(flat.contains(key), ref.count(key) == 1) << key;
    }
}

TEST(FlatSet64, SurvivesGrowthAcrossManyKeys)
{
    FlatSet64 set;
    std::vector<std::uint64_t> keys;
    Rng rng(2020, /*stream=*/17);
    for (int i = 0; i < 5'000; ++i)
        keys.push_back(rng.next64() | 1); // avoid the reserved 0
    for (std::uint64_t k : keys)
        set.insert(k);
    for (std::uint64_t k : keys)
        EXPECT_TRUE(set.contains(k));
}

} // namespace
} // namespace accel::sim

/** @file Tests for the SBO callback type backing EventQueue events. */

#include "sim/inline_callback.hh"

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::sim {
namespace {

/** Tracks construction/destruction balance via a shared counter. */
struct Tracked
{
    std::shared_ptr<int> alive;

    explicit Tracked(std::shared_ptr<int> a) : alive(std::move(a))
    {
        ++*alive;
    }
    Tracked(const Tracked &other) : alive(other.alive) { ++*alive; }
    Tracked(Tracked &&other) noexcept : alive(other.alive) { ++*alive; }
    ~Tracked()
    {
        if (alive)
            --*alive;
    }
    void operator()() const {}
};

TEST(InlineCallback, SmallCaptureStaysInline)
{
    const std::uint64_t spillsBefore = detail::spillAllocations();
    int fired = 0;
    std::array<char, 32> pad{};
    InlineCallback cb([&fired, pad] { fired += 1 + pad[0]; });
    cb();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(detail::spillAllocations(), spillsBefore)
        << "a 40-byte capture must not spill";
}

TEST(InlineCallback, OversizedCaptureSpillsAndReleases)
{
    const std::uint64_t liveBefore = detail::spillLive();
    const std::uint64_t spillsBefore = detail::spillAllocations();
    int fired = 0;
    {
        std::array<char, InlineCallback::kInlineBytes + 1> big{};
        InlineCallback cb([&fired, big] { fired += 1 + big[0]; });
        EXPECT_EQ(detail::spillAllocations(), spillsBefore + 1);
        EXPECT_EQ(detail::spillLive(), liveBefore + 1);
        cb();
        EXPECT_EQ(fired, 1);
    }
    EXPECT_EQ(detail::spillLive(), liveBefore)
        << "destroying a spilled callback must free its spill slot";
}

TEST(InlineCallback, MoveTransfersStateWithoutInvoking)
{
    int fired = 0;
    InlineCallback a([&fired] { ++fired; });
    InlineCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: testing moved-from
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(fired, 0);
    b();
    EXPECT_EQ(fired, 1);
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget)
{
    auto alive = std::make_shared<int>(0);
    InlineCallback a{Tracked(alive)};
    InlineCallback b{Tracked(alive)};
    const int beforeAssign = *alive;
    b = std::move(a);
    EXPECT_EQ(*alive, beforeAssign - 1)
        << "the assigned-over callable must be destroyed";
    b = nullptr;
    EXPECT_EQ(*alive, 0);
}

TEST(InlineCallback, SpilledMoveKeepsPayloadAddress)
{
    // A spilled payload must not be re-copied by moves: the wrapper
    // relocates only the pointer, so moving is cheap and the payload's
    // address is stable.
    const std::uint64_t spillsBefore = detail::spillAllocations();
    std::array<char, 128> big{};
    big[0] = 42;
    int seen = 0;
    InlineFunction<void()> a([big, &seen] { seen = big[0]; });
    EXPECT_EQ(detail::spillAllocations(), spillsBefore + 1);
    InlineFunction<void()> b(std::move(a));
    InlineFunction<void()> c(std::move(b));
    EXPECT_EQ(detail::spillAllocations(), spillsBefore + 1)
        << "moving a spilled callback must not allocate again";
    c();
    EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, MoveOnlyCapturesAccepted)
{
    // std::function rejects move-only captures outright; the event
    // queue needs them (callbacks own moved-in work items).
    auto owned = std::make_unique<int>(7);
    int seen = 0;
    InlineCallback cb(
        [p = std::move(owned), &seen] { seen = *p; });
    cb();
    EXPECT_EQ(seen, 7);
}

TEST(InlineCallback, TrackedStateBalancedInlineAndSpilled)
{
    auto alive = std::make_shared<int>(0);
    {
        InlineCallback inlineCb{Tracked(alive)};
        // Pad past the inline budget so this one spills.
        struct BigTracked : Tracked
        {
            char pad[InlineCallback::kInlineBytes]{};
            using Tracked::Tracked;
        };
        InlineCallback spilled{BigTracked(alive)};
        InlineCallback moved(std::move(inlineCb));
        InlineCallback movedSpill(std::move(spilled));
        EXPECT_GT(*alive, 0);
    }
    EXPECT_EQ(*alive, 0) << "constructions and destructions must balance";
}

TEST(InlineCallback, EmptyInvokePanics)
{
    InlineCallback empty;
    EXPECT_THROW(empty(), PanicError);
    InlineCallback cleared([] {});
    cleared = nullptr;
    EXPECT_THROW(cleared(), PanicError);
}

TEST(InlineCallback, ArgumentsAndReturnValuesFlow)
{
    InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 3), 5);

    int sink = 0;
    InlineFunction<void(int)> consume([&sink](int v) { sink = v; });
    consume(9);
    EXPECT_EQ(sink, 9);
}

TEST(InlineCallback, ReassignmentReplacesCallable)
{
    int which = 0;
    InlineCallback cb([&which] { which = 1; });
    cb = [&which] { which = 2; };
    cb();
    EXPECT_EQ(which, 2);
}

} // namespace
} // namespace accel::sim

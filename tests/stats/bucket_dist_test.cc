/** @file Tests for the empirical bucketed distribution. */

#include "stats/bucket_dist.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

BucketDist
uniformDist()
{
    // One bucket [0, 100) with all mass: uniform on [0, 100).
    return BucketDist({{0, 100, 1.0}});
}

BucketDist
twoBucketDist()
{
    // 25% in [0, 10), 75% in [10, 110).
    return BucketDist({{0, 10, 1.0}, {10, 110, 3.0}});
}

TEST(BucketDist, NormalizesMass)
{
    BucketDist d = twoBucketDist();
    EXPECT_DOUBLE_EQ(d.bucket(0).mass, 0.25);
    EXPECT_DOUBLE_EQ(d.bucket(1).mass, 0.75);
}

TEST(BucketDist, FractionAtLeastEdges)
{
    BucketDist d = twoBucketDist();
    EXPECT_DOUBLE_EQ(d.fractionAtLeast(0), 1.0);
    EXPECT_DOUBLE_EQ(d.fractionAtLeast(10), 0.75);
    EXPECT_DOUBLE_EQ(d.fractionAtLeast(110), 0.0);
}

TEST(BucketDist, FractionAtLeastInterpolates)
{
    BucketDist d = uniformDist();
    EXPECT_DOUBLE_EQ(d.fractionAtLeast(25), 0.75);
    EXPECT_DOUBLE_EQ(d.fractionAtLeast(50), 0.5);
}

TEST(BucketDist, CdfComplement)
{
    BucketDist d = twoBucketDist();
    EXPECT_DOUBLE_EQ(d.cdf(10), 0.25);
    EXPECT_DOUBLE_EQ(d.cdf(60) + d.fractionAtLeast(60), 1.0);
}

TEST(BucketDist, MeanUsesBucketMidpoints)
{
    BucketDist d = twoBucketDist();
    EXPECT_DOUBLE_EQ(d.mean(), 0.25 * 5 + 0.75 * 60);
}

TEST(BucketDist, ValueFractionAtLeast)
{
    BucketDist d = twoBucketDist();
    // Value above 10: bucket1 carries 0.75 * 60; total = 46.25.
    double expected = (0.75 * 60) / (0.25 * 5 + 0.75 * 60);
    EXPECT_NEAR(d.valueFractionAtLeast(10), expected, 1e-12);
    EXPECT_DOUBLE_EQ(d.valueFractionAtLeast(0), 1.0);
}

TEST(BucketDist, ValueFractionInterpolates)
{
    BucketDist d = uniformDist();
    // Mass above 50 is half, carrying mean 75: 0.5*75 / 50 = 0.75.
    EXPECT_NEAR(d.valueFractionAtLeast(50), 0.75, 1e-12);
}

TEST(BucketDist, QuantileEdgesAndInterior)
{
    BucketDist d = twoBucketDist();
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.25), 10.0);
    EXPECT_NEAR(d.quantile(0.625), 60.0, 1e-9);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 110.0);
}

TEST(BucketDist, QuantileInverseOfCdf)
{
    BucketDist d = twoBucketDist();
    for (double p : {0.1, 0.3, 0.5, 0.9})
        EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-9);
}

TEST(BucketDist, SamplesStayInSupport)
{
    BucketDist d = twoBucketDist();
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        double v = d.sample(rng);
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 110.0);
    }
}

TEST(BucketDist, SampleFractionsMatchMasses)
{
    BucketDist d = twoBucketDist();
    Rng rng(78);
    int low = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        low += d.sample(rng) < 10.0;
    EXPECT_NEAR(static_cast<double>(low) / n, 0.25, 0.01);
}

TEST(BucketDist, SampleMeanMatchesAnalyticMean)
{
    BucketDist d = twoBucketDist();
    Rng rng(79);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += d.sample(rng);
    EXPECT_NEAR(sum / n, d.mean(), 0.5);
}

TEST(BucketDist, GapsBetweenBucketsAllowed)
{
    BucketDist d({{0, 10, 1.0}, {100, 200, 1.0}});
    EXPECT_DOUBLE_EQ(d.fractionAtLeast(50), 0.5);
}

TEST(BucketDist, RejectsMalformedBuckets)
{
    EXPECT_THROW(BucketDist({}), FatalError);
    EXPECT_THROW(BucketDist({{10, 10, 1.0}}), FatalError);       // hi == lo
    EXPECT_THROW(BucketDist({{10, 5, 1.0}}), FatalError);        // hi < lo
    EXPECT_THROW(BucketDist({{0, 10, -1.0}}), FatalError);       // neg mass
    EXPECT_THROW(BucketDist({{0, 10, 0.0}}), FatalError);        // no mass
    EXPECT_THROW(BucketDist({{0, 20, 1.0}, {10, 30, 1.0}}),      // overlap
                 FatalError);
}

TEST(BucketDist, QuantileRejectsOutOfRange)
{
    BucketDist d = uniformDist();
    EXPECT_THROW(d.quantile(-0.1), FatalError);
    EXPECT_THROW(d.quantile(1.1), FatalError);
}

TEST(BucketDist, LabelsReadable)
{
    BucketDist d({{0, 64, 1.0}, {2048, 4096, 1.0}});
    EXPECT_EQ(d.bucketLabel(0), "0-64");
    EXPECT_EQ(d.bucketLabel(1), "2K-4K");
}

} // namespace
} // namespace accel

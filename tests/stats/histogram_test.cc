/** @file Tests for the bucketed histogram. */

#include "stats/histogram.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel {
namespace {

TEST(Histogram, Pow2BucketScheme)
{
    Histogram h = Histogram::makePow2(4, 4096);
    // Edges: 0,4,8,...,4096 -> 11 interior buckets + overflow.
    EXPECT_EQ(h.bucketCount(), 12u);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(0), 4.0);
    EXPECT_TRUE(std::isinf(h.bucketHi(h.bucketCount() - 1)));
}

TEST(Histogram, ValuesLandInCorrectBuckets)
{
    Histogram h = Histogram::makePow2(4, 16);
    // Buckets: [0,4) [4,8) [8,16) [16,inf)
    h.add(0);
    h.add(3.9);
    h.add(4);
    h.add(15.9);
    h.add(16);
    h.add(1e9);
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 2);
    EXPECT_DOUBLE_EQ(h.bucketWeight(1), 1);
    EXPECT_DOUBLE_EQ(h.bucketWeight(2), 1);
    EXPECT_DOUBLE_EQ(h.bucketWeight(3), 2);
}

TEST(Histogram, NegativeClampsToFirstBucket)
{
    Histogram h = Histogram::makePow2(4, 16);
    h.add(-5);
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 1);
}

TEST(Histogram, CumulativeFractionMonotone)
{
    Histogram h = Histogram::makePow2(4, 64);
    for (double v : {1.0, 5.0, 9.0, 33.0, 100.0})
        h.add(v);
    double prev = 0;
    for (size_t i = 0; i < h.bucketCount(); ++i) {
        double c = h.cumulativeFraction(i);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(h.bucketCount() - 1), 1.0);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h = Histogram::makePow2(4, 8);
    h.addWeighted(2, 10);
    h.addWeighted(5, 30);
    EXPECT_DOUBLE_EQ(h.total(), 40);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.25);
}

TEST(Histogram, LabelsHumanReadable)
{
    Histogram h = Histogram::makePow2(4, 4096);
    EXPECT_EQ(h.bucketLabel(0), "0-4");
    EXPECT_EQ(h.bucketLabel(h.bucketCount() - 1), ">4K");
}

TEST(Histogram, StatsTrackRawValues)
{
    Histogram h = Histogram::makePow2(4, 64);
    h.add(10);
    h.add(20);
    EXPECT_DOUBLE_EQ(h.stats().mean(), 15.0);
}

TEST(Histogram, RejectsBadEdges)
{
    EXPECT_THROW(Histogram({1.0}), FatalError);
    EXPECT_THROW(Histogram({2.0, 1.0}), FatalError);
    EXPECT_THROW(Histogram({1.0, 1.0}), FatalError);
    EXPECT_THROW(Histogram::makePow2(0, 16), FatalError);
    EXPECT_THROW(Histogram::makePow2(32, 16), FatalError);
}

TEST(Histogram, RejectsNegativeWeight)
{
    Histogram h = Histogram::makePow2(4, 16);
    EXPECT_THROW(h.addWeighted(1, -1), FatalError);
}

TEST(Histogram, EmptyCumulativeIsZero)
{
    Histogram h = Histogram::makePow2(4, 16);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.0);
}

TEST(Histogram, FractionalEdgeLabelsKeepPrecision)
{
    // Regression: long-long formatting rendered 0.5 as "0", producing
    // duplicate labels like "0-0".
    Histogram h(std::vector<double>{0.0, 0.5, 1.0, 2.5});
    EXPECT_EQ(h.bucketLabel(0), "0-0.5");
    EXPECT_EQ(h.bucketLabel(1), "0.5-1");
    EXPECT_EQ(h.bucketLabel(2), "1-2.5");
    EXPECT_EQ(h.bucketLabel(3), ">2.5");
}

TEST(Histogram, IntegerAndKilobyteLabelsUnchanged)
{
    Histogram h(std::vector<double>{0.0, 256.0, 4096.0});
    EXPECT_EQ(h.bucketLabel(0), "0-256");
    EXPECT_EQ(h.bucketLabel(1), "256-4K");
    EXPECT_EQ(h.bucketLabel(2), ">4K");
}

TEST(Histogram, CumulativeFractionMatchesManualSum)
{
    Histogram h = Histogram::makePow2(4, 64);
    Rng rng(2020);
    for (int i = 0; i < 5000; ++i)
        h.addWeighted(rng.uniform(0, 100), rng.uniform(0.5, 2.0));
    double cum = 0;
    for (size_t i = 0; i < h.bucketCount(); ++i) {
        cum += h.bucketWeight(i);
        EXPECT_DOUBLE_EQ(h.cumulativeFraction(i), cum / h.total());
    }
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(h.bucketCount() - 1), 1.0);
}

TEST(Histogram, CumulativeCacheInvalidatedByAdds)
{
    Histogram h = Histogram::makePow2(4, 16);
    h.add(2);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 1.0);
    // New mass in the overflow bucket must be visible after the
    // cached prefix sum was already materialized.
    h.add(100);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(h.bucketCount() - 1), 1.0);
}

} // namespace
} // namespace accel

/** @file Tests for the bucketed histogram. */

#include "stats/histogram.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel {
namespace {

TEST(Histogram, Pow2BucketScheme)
{
    Histogram h = Histogram::makePow2(4, 4096);
    // Edges: 0,4,8,...,4096 -> 11 interior buckets + overflow.
    EXPECT_EQ(h.bucketCount(), 12u);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(0), 4.0);
    EXPECT_TRUE(std::isinf(h.bucketHi(h.bucketCount() - 1)));
}

TEST(Histogram, ValuesLandInCorrectBuckets)
{
    Histogram h = Histogram::makePow2(4, 16);
    // Buckets: [0,4) [4,8) [8,16) [16,inf)
    h.add(0);
    h.add(3.9);
    h.add(4);
    h.add(15.9);
    h.add(16);
    h.add(1e9);
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 2);
    EXPECT_DOUBLE_EQ(h.bucketWeight(1), 1);
    EXPECT_DOUBLE_EQ(h.bucketWeight(2), 1);
    EXPECT_DOUBLE_EQ(h.bucketWeight(3), 2);
}

TEST(Histogram, NegativeClampsToFirstBucket)
{
    Histogram h = Histogram::makePow2(4, 16);
    h.add(-5);
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 1);
}

TEST(Histogram, CumulativeFractionMonotone)
{
    Histogram h = Histogram::makePow2(4, 64);
    for (double v : {1.0, 5.0, 9.0, 33.0, 100.0})
        h.add(v);
    double prev = 0;
    for (size_t i = 0; i < h.bucketCount(); ++i) {
        double c = h.cumulativeFraction(i);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(h.bucketCount() - 1), 1.0);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h = Histogram::makePow2(4, 8);
    h.addWeighted(2, 10);
    h.addWeighted(5, 30);
    EXPECT_DOUBLE_EQ(h.total(), 40);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.25);
}

TEST(Histogram, LabelsHumanReadable)
{
    Histogram h = Histogram::makePow2(4, 4096);
    EXPECT_EQ(h.bucketLabel(0), "0-4");
    EXPECT_EQ(h.bucketLabel(h.bucketCount() - 1), ">4K");
}

TEST(Histogram, StatsTrackRawValues)
{
    Histogram h = Histogram::makePow2(4, 64);
    h.add(10);
    h.add(20);
    EXPECT_DOUBLE_EQ(h.stats().mean(), 15.0);
}

TEST(Histogram, RejectsBadEdges)
{
    EXPECT_THROW(Histogram({1.0}), FatalError);
    EXPECT_THROW(Histogram({2.0, 1.0}), FatalError);
    EXPECT_THROW(Histogram({1.0, 1.0}), FatalError);
    EXPECT_THROW(Histogram::makePow2(0, 16), FatalError);
    EXPECT_THROW(Histogram::makePow2(32, 16), FatalError);
}

TEST(Histogram, RejectsNegativeWeight)
{
    Histogram h = Histogram::makePow2(4, 16);
    EXPECT_THROW(h.addWeighted(1, -1), FatalError);
}

TEST(Histogram, EmptyCumulativeIsZero)
{
    Histogram h = Histogram::makePow2(4, 16);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.0);
}

TEST(Histogram, FractionalEdgeLabelsKeepPrecision)
{
    // Regression: long-long formatting rendered 0.5 as "0", producing
    // duplicate labels like "0-0".
    Histogram h(std::vector<double>{0.0, 0.5, 1.0, 2.5});
    EXPECT_EQ(h.bucketLabel(0), "0-0.5");
    EXPECT_EQ(h.bucketLabel(1), "0.5-1");
    EXPECT_EQ(h.bucketLabel(2), "1-2.5");
    EXPECT_EQ(h.bucketLabel(3), ">2.5");
}

TEST(Histogram, IntegerAndKilobyteLabelsUnchanged)
{
    Histogram h(std::vector<double>{0.0, 256.0, 4096.0});
    EXPECT_EQ(h.bucketLabel(0), "0-256");
    EXPECT_EQ(h.bucketLabel(1), "256-4K");
    EXPECT_EQ(h.bucketLabel(2), ">4K");
}

TEST(Histogram, CumulativeFractionMatchesManualSum)
{
    Histogram h = Histogram::makePow2(4, 64);
    Rng rng(2020);
    for (int i = 0; i < 5000; ++i)
        h.addWeighted(rng.uniform(0, 100), rng.uniform(0.5, 2.0));
    double cum = 0;
    for (size_t i = 0; i < h.bucketCount(); ++i) {
        cum += h.bucketWeight(i);
        EXPECT_DOUBLE_EQ(h.cumulativeFraction(i), cum / h.total());
    }
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(h.bucketCount() - 1), 1.0);
}

TEST(Histogram, CumulativeCacheInvalidatedByAdds)
{
    Histogram h = Histogram::makePow2(4, 16);
    h.add(2);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 1.0);
    // New mass in the overflow bucket must be visible after the
    // cached prefix sum was already materialized.
    h.add(100);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(h.bucketCount() - 1), 1.0);
}

TEST(Histogram, MergeSumsBucketsAndStats)
{
    Histogram a = Histogram::makePow2(4, 16);
    Histogram b = Histogram::makePow2(4, 16);
    a.add(2);
    a.add(10);
    b.add(2);
    b.add(100);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.total(), 4.0);
    EXPECT_DOUBLE_EQ(a.bucketWeight(0), 2.0);
    EXPECT_DOUBLE_EQ(a.bucketWeight(2), 1.0);
    EXPECT_DOUBLE_EQ(a.bucketWeight(3), 1.0);
    // Raw-value stats merge too (Chan), so no double counting and no
    // lost mass: mean of {2, 10, 2, 100}.
    EXPECT_DOUBLE_EQ(a.stats().mean(), 28.5);
    EXPECT_EQ(a.stats().count(), 4u);
}

TEST(Histogram, MergeMatchesSingleStreamBitForBit)
{
    // Windowed aggregation (the autoscaler's use): splitting a stream
    // across windows and merging must equal adding every value to one
    // histogram directly.
    Histogram whole = Histogram::makePow2(4, 4096);
    Histogram merged = Histogram::makePow2(4, 4096);
    Rng rng(77);
    for (int w = 0; w < 10; ++w) {
        Histogram window = Histogram::makePow2(4, 4096);
        for (int i = 0; i < 200; ++i) {
            double v = rng.uniform(0, 5000);
            whole.add(v);
            window.add(v);
        }
        merged.merge(window);
    }
    EXPECT_DOUBLE_EQ(merged.total(), whole.total());
    for (size_t i = 0; i < whole.bucketCount(); ++i)
        EXPECT_DOUBLE_EQ(merged.bucketWeight(i), whole.bucketWeight(i));
    EXPECT_DOUBLE_EQ(merged.quantile(0.99), whole.quantile(0.99));
}

TEST(Histogram, MergeInvalidatesCumulativeCache)
{
    Histogram a = Histogram::makePow2(4, 16);
    Histogram b = Histogram::makePow2(4, 16);
    a.add(2);
    EXPECT_DOUBLE_EQ(a.cumulativeFraction(0), 1.0); // cache built
    b.add(100);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.cumulativeFraction(0), 0.5);
}

TEST(Histogram, MergeRejectsMismatchedEdges)
{
    Histogram a = Histogram::makePow2(4, 16);
    Histogram b = Histogram::makePow2(4, 32);
    EXPECT_THROW(a.merge(b), FatalError);
}

TEST(Histogram, QuantileInterpolatesWithinBucket)
{
    Histogram h(std::vector<double>{0.0, 10.0, 20.0});
    for (int i = 0; i < 10; ++i)
        h.add(5.0); // all mass in [0, 10)
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.1), 1.0);
}

TEST(Histogram, QuantileSpansBuckets)
{
    Histogram h(std::vector<double>{0.0, 10.0, 20.0});
    for (int i = 0; i < 9; ++i)
        h.add(5.0);
    h.add(15.0);
    // p90 target lands exactly at the first bucket's upper edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.95), 15.0);
}

TEST(Histogram, QuantileOverflowPinsToLastEdge)
{
    Histogram h(std::vector<double>{0.0, 10.0});
    h.add(1e9); // overflow bucket
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
}

TEST(Histogram, QuantileEmptyAndDomain)
{
    Histogram h = Histogram::makePow2(4, 16);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
    h.add(5);
    EXPECT_THROW(h.quantile(-0.1), FatalError);
    EXPECT_THROW(h.quantile(1.1), FatalError);
}

} // namespace
} // namespace accel

/** @file Tests for the streaming statistics accumulator. */

#include "stats/online_stats.hh"

#include <cmath>

#include <gtest/gtest.h>

namespace accel {
namespace {

TEST(OnlineStats, EmptyDefaults)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments)
{
    OnlineStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic population-variance set
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    OnlineStats whole, a, b;
    for (int i = 0; i < 100; ++i) {
        double v = i * 0.37 - 3.0;
        whole.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, empty;
    a.add(1.0);
    a.add(3.0);
    OnlineStats copy = a;
    a.merge(empty);
    EXPECT_EQ(a.count(), copy.count());
    EXPECT_DOUBLE_EQ(a.mean(), copy.mean());

    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(OnlineStats, NumericalStabilityLargeOffset)
{
    // Welford must not lose the small variance under a huge offset.
    OnlineStats s;
    for (double v : {1e9 + 1, 1e9 + 2, 1e9 + 3})
        s.add(v);
    EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(OnlineStats, TracksMinMax)
{
    OnlineStats s;
    s.add(3.0);
    s.add(-7.0);
    s.add(11.0);
    EXPECT_DOUBLE_EQ(s.min(), -7.0);
    EXPECT_DOUBLE_EQ(s.max(), 11.0);
}

} // namespace
} // namespace accel

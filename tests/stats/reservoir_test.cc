/** @file Tests for reservoir sampling and quantile estimation. */

#include "stats/reservoir.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

TEST(Reservoir, SmallStreamKeptExactly)
{
    ReservoirSample r(100);
    for (int i = 1; i <= 10; ++i)
        r.add(i);
    EXPECT_EQ(r.count(), 10u);
    EXPECT_EQ(r.size(), 10u);
    EXPECT_DOUBLE_EQ(r.quantile(0.0), 1);
    EXPECT_DOUBLE_EQ(r.p50(), 5);
    EXPECT_DOUBLE_EQ(r.quantile(1.0), 10);
}

TEST(Reservoir, NearestRankSemantics)
{
    ReservoirSample r(16);
    for (double v : {10.0, 20.0, 30.0, 40.0})
        r.add(v);
    EXPECT_DOUBLE_EQ(r.quantile(0.25), 10);
    EXPECT_DOUBLE_EQ(r.quantile(0.26), 20);
    EXPECT_DOUBLE_EQ(r.quantile(0.75), 30);
    EXPECT_DOUBLE_EQ(r.quantile(0.76), 40);
}

TEST(Reservoir, CapacityBoundsMemory)
{
    ReservoirSample r(64);
    for (int i = 0; i < 100000; ++i)
        r.add(i);
    EXPECT_EQ(r.size(), 64u);
    EXPECT_EQ(r.count(), 100000u);
}

TEST(Reservoir, LargeStreamQuantilesApproximate)
{
    // Uniform [0, 1000): p50 ~ 500, p99 ~ 990.
    ReservoirSample r(4096);
    Rng rng(5);
    for (int i = 0; i < 500000; ++i)
        r.add(rng.uniform(0, 1000));
    EXPECT_NEAR(r.p50(), 500, 30);
    EXPECT_NEAR(r.p95(), 950, 20);
    EXPECT_NEAR(r.p99(), 990, 15);
}

TEST(Reservoir, SkewedTailCaptured)
{
    // 99% at 10, 1% at 1000: p95 stays low, p995 catches the spike.
    ReservoirSample r(8192);
    Rng rng(6);
    for (int i = 0; i < 300000; ++i)
        r.add(rng.chance(0.01) ? 1000.0 : 10.0);
    EXPECT_DOUBLE_EQ(r.p95(), 10);
    EXPECT_DOUBLE_EQ(r.quantile(0.995), 1000);
}

TEST(Reservoir, InterleavedAddAndQuantile)
{
    ReservoirSample r(32);
    r.add(1);
    EXPECT_DOUBLE_EQ(r.p50(), 1);
    r.add(3);
    EXPECT_DOUBLE_EQ(r.quantile(1.0), 3);
    r.add(2);
    EXPECT_DOUBLE_EQ(r.p50(), 2);
}

TEST(Reservoir, AlgorithmRKeepsStreamPositionsUniformly)
{
    // Algorithm R must sample every stream position with equal
    // probability K/N. Stream the positions 0..N-1 as values across
    // many seeds and count how many survivors fall into each quarter
    // of the stream; a biased replacement draw (the old 32-bit modulo)
    // systematically favors some region. Aggregate counts are
    // binomial-ish: expected 3840 per quarter, sd ~54, tolerance 5 sd.
    constexpr size_t kCapacity = 512;
    constexpr size_t kStream = 20000;
    constexpr int kSeeds = 30;
    constexpr size_t kQuarter = kStream / 4;
    size_t quarters[4] = {};
    for (int seed = 1; seed <= kSeeds; ++seed) {
        ReservoirSample r(kCapacity, static_cast<std::uint64_t>(seed));
        for (size_t i = 0; i < kStream; ++i)
            r.add(static_cast<double>(i));
        for (size_t q = 0; q < 4; ++q) {
            // Survivors in [q*kQuarter, (q+1)*kQuarter) by quantile
            // counting: values are the positions themselves.
            double lo = static_cast<double>(q * kQuarter);
            double hi = static_cast<double>((q + 1) * kQuarter);
            for (size_t s = 0; s < r.size(); ++s) {
                double v = r.quantile(
                    (static_cast<double>(s) + 0.5) / r.size());
                if (v >= lo && v < hi)
                    ++quarters[q];
            }
        }
    }
    double expected = kCapacity * kSeeds / 4.0;
    for (size_t q = 0; q < 4; ++q)
        EXPECT_NEAR(quarters[q], expected, 270) << "quarter " << q;
}

TEST(Reservoir, DomainChecks)
{
    ReservoirSample r(8);
    EXPECT_THROW(r.quantile(0.5), FatalError); // empty
    r.add(1);
    EXPECT_THROW(r.quantile(-0.1), FatalError);
    EXPECT_THROW(r.quantile(1.1), FatalError);
    EXPECT_THROW(ReservoirSample(0), FatalError);
}

} // namespace
} // namespace accel

/** @file Tests for reservoir sampling and quantile estimation. */

#include "stats/reservoir.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

TEST(Reservoir, SmallStreamKeptExactly)
{
    ReservoirSample r(100);
    for (int i = 1; i <= 10; ++i)
        r.add(i);
    EXPECT_EQ(r.count(), 10u);
    EXPECT_EQ(r.size(), 10u);
    EXPECT_DOUBLE_EQ(r.quantile(0.0), 1);
    EXPECT_DOUBLE_EQ(r.p50(), 5);
    EXPECT_DOUBLE_EQ(r.quantile(1.0), 10);
}

TEST(Reservoir, NearestRankSemantics)
{
    ReservoirSample r(16);
    for (double v : {10.0, 20.0, 30.0, 40.0})
        r.add(v);
    EXPECT_DOUBLE_EQ(r.quantile(0.25), 10);
    EXPECT_DOUBLE_EQ(r.quantile(0.26), 20);
    EXPECT_DOUBLE_EQ(r.quantile(0.75), 30);
    EXPECT_DOUBLE_EQ(r.quantile(0.76), 40);
}

TEST(Reservoir, CapacityBoundsMemory)
{
    ReservoirSample r(64);
    for (int i = 0; i < 100000; ++i)
        r.add(i);
    EXPECT_EQ(r.size(), 64u);
    EXPECT_EQ(r.count(), 100000u);
}

TEST(Reservoir, LargeStreamQuantilesApproximate)
{
    // Uniform [0, 1000): p50 ~ 500, p99 ~ 990.
    ReservoirSample r(4096);
    Rng rng(5);
    for (int i = 0; i < 500000; ++i)
        r.add(rng.uniform(0, 1000));
    EXPECT_NEAR(r.p50(), 500, 30);
    EXPECT_NEAR(r.p95(), 950, 20);
    EXPECT_NEAR(r.p99(), 990, 15);
}

TEST(Reservoir, SkewedTailCaptured)
{
    // 99% at 10, 1% at 1000: p95 stays low, p995 catches the spike.
    ReservoirSample r(8192);
    Rng rng(6);
    for (int i = 0; i < 300000; ++i)
        r.add(rng.chance(0.01) ? 1000.0 : 10.0);
    EXPECT_DOUBLE_EQ(r.p95(), 10);
    EXPECT_DOUBLE_EQ(r.quantile(0.995), 1000);
}

TEST(Reservoir, InterleavedAddAndQuantile)
{
    ReservoirSample r(32);
    r.add(1);
    EXPECT_DOUBLE_EQ(r.p50(), 1);
    r.add(3);
    EXPECT_DOUBLE_EQ(r.quantile(1.0), 3);
    r.add(2);
    EXPECT_DOUBLE_EQ(r.p50(), 2);
}

TEST(Reservoir, DomainChecks)
{
    ReservoirSample r(8);
    EXPECT_THROW(r.quantile(0.5), FatalError); // empty
    r.add(1);
    EXPECT_THROW(r.quantile(-0.1), FatalError);
    EXPECT_THROW(r.quantile(1.1), FatalError);
    EXPECT_THROW(ReservoirSample(0), FatalError);
}

} // namespace
} // namespace accel

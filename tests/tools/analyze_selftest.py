#!/usr/bin/env python3
"""Self-test for tools/analyze/accel_analyze.py.

Runs the analyzer over the fixture corpus in
tests/tools/fixtures/analyze (a fake repo root) and asserts that every
rule fires exactly where the fixtures say it must, that allow()
comments suppress, that --audit-suppressions catches a planted stale
allow, that the baseline round-trips, that the SARIF report is
well-formed, and that the regression roots pin the planted real-source
defects (and their fixed forms stay clean).

Usage: analyze_selftest.py <case>
where <case> is a rule name, "suppression", "clean", "exit-code",
"audit-stale", "regression-dangling", "regression-rng",
"regression-validate", "baseline", or "sarif".
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ANALYZE = os.path.join(HERE, "..", "..", "tools", "analyze",
                       "accel_analyze.py")
FIXTURES = os.path.join(HERE, "fixtures", "analyze")
STALE_ROOT = os.path.join(FIXTURES, "stale")
REGRESSION = os.path.join(FIXTURES, "regression")

# Expected *unsuppressed* findings per rule: file -> count. The fixture
# headers pin the same numbers; keep them in sync.
EXPECTED = {
    "dangling-capture": {"src/sim/bad_dangling.cc": 3},
    "rng-discipline": {"src/sim/bad_rng.cc": 5},
    "validate-coverage": {"src/model/bad_validate.cc": 3},
    "metrics-accounting": {"src/microsim/bad_metrics.cc": 3},
}

# Every bad fixture carries exactly one suppressed finding.
SUPPRESSED = {
    "src/sim/bad_dangling.cc": 1,
    "src/sim/bad_rng.cc": 1,
    "src/model/bad_validate.cc": 1,
    "src/microsim/bad_metrics.cc": 1,
}

CLEAN_FILE = "src/model/clean_analyze.cc"

# Regression roots: (root dir, rule, defect file, fixed file or None).
REGRESSIONS = {
    "regression-dangling": ("dangling", "dangling-capture",
                            "src/microsim/service_defect.cc",
                            "src/microsim/service_fixed.cc"),
    "regression-rng": ("rng", "rng-discipline",
                       "src/microsim/hedge_defect.cc",
                       "src/microsim/hedge_fixed.cc"),
    "regression-validate": ("validate", "validate-coverage",
                            "src/model/plan_defect.cc", None),
}


def run_analyze(root, extra=None, paths=("src",)):
    with tempfile.NamedTemporaryFile(suffix=".json",
                                     delete=False) as tmp:
        report_path = tmp.name
    try:
        argv = [sys.executable, ANALYZE, "--root", root,
                "--frontend", "builtin", "--baseline", "none",
                "--json", report_path] + list(extra or []) + list(paths)
        proc = subprocess.run(argv, capture_output=True, text=True)
        with open(report_path, encoding="utf-8") as f:
            report = json.load(f)
    finally:
        os.unlink(report_path)
    return proc, report


def fail(msg, proc):
    print("FAIL:", msg)
    print("--- analyzer stdout ---")
    print(proc.stdout)
    print("--- analyzer stderr ---")
    print(proc.stderr)
    return 1


def libclang_importable():
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    case = sys.argv[1]

    if case in EXPECTED:
        proc, report = run_analyze(FIXTURES)
        findings = report["findings"]
        for path, want in EXPECTED[case].items():
            got = sum(1 for f in findings
                      if f["rule"] == case and f["file"] == path and
                      not f["suppressed"])
            if got != want:
                return fail("rule %s: expected %d finding(s) in %s, "
                            "got %d" % (case, want, path, got), proc)
        stray = sum(1 for f in findings
                    if f["rule"] == case and f["file"] == CLEAN_FILE)
        if stray:
            return fail("rule %s fired %d time(s) on the clean "
                        "fixture" % (case, stray), proc)
    elif case == "suppression":
        proc, report = run_analyze(FIXTURES)
        findings = report["findings"]
        for path, want in SUPPRESSED.items():
            got = sum(1 for f in findings
                      if f["file"] == path and f["suppressed"])
            if got != want:
                return fail("%s: expected %d suppressed finding(s), "
                            "got %d" % (path, want, got), proc)
    elif case == "clean":
        proc, report = run_analyze(FIXTURES)
        stray = [f for f in report["findings"]
                 if f["file"] == CLEAN_FILE]
        if stray:
            return fail("clean fixture produced findings: %r" % stray,
                        proc)
    elif case == "exit-code":
        proc, _ = run_analyze(FIXTURES)
        if proc.returncode != 1:
            return fail("expected exit 1 with unsuppressed findings, "
                        "got %d" % proc.returncode, proc)
        clean_proc, _ = run_analyze(
            FIXTURES, paths=(os.path.join("src", "model",
                                          "clean_analyze.cc"),))
        if clean_proc.returncode != 0:
            return fail("expected exit 0 on the clean fixture, got %d"
                        % clean_proc.returncode, clean_proc)
        bad_rule = subprocess.run(
            [sys.executable, ANALYZE, "--root", FIXTURES,
             "--rules", "no-such-rule", "src"],
            capture_output=True, text=True)
        if bad_rule.returncode != 2:
            return fail("expected exit 2 on an unknown rule, got %d"
                        % bad_rule.returncode, bad_rule)
        # --frontend libclang must hard-error (not silently degrade)
        # when the clang bindings are missing.
        hard = subprocess.run(
            [sys.executable, ANALYZE, "--root", FIXTURES,
             "--frontend", "libclang", "src"],
            capture_output=True, text=True)
        if libclang_importable():
            if hard.returncode not in (0, 1):
                return fail("libclang available: expected exit 0/1, "
                            "got %d" % hard.returncode, hard)
        else:
            if hard.returncode != 2:
                return fail("libclang missing: expected exit 2 from "
                            "--frontend libclang, got %d"
                            % hard.returncode, hard)
            if "needs libclang" not in hard.stderr:
                return fail("missing-libclang error must say 'needs "
                            "libclang'", hard)
    elif case == "audit-stale":
        proc, report = run_analyze(STALE_ROOT,
                                   extra=["--audit-suppressions"])
        if proc.returncode != 1:
            return fail("expected exit 1 from the stale audit, got %d"
                        % proc.returncode, proc)
        stale = report.get("stale", [])
        if len(stale) != 1 or stale[0]["file"] != "src/stale.cc" or \
                stale[0]["line"] != 18:
            return fail("expected exactly one stale suppression at "
                        "src/stale.cc:18, got %r" % stale, proc)
        # The main corpus audit must be clean: every allow() there
        # covers a live finding.
        live_proc, live_report = run_analyze(
            FIXTURES, extra=["--audit-suppressions"])
        if live_proc.returncode != 0 or live_report.get("stale"):
            return fail("main fixture corpus audit should be clean, "
                        "exit %d, stale %r"
                        % (live_proc.returncode,
                           live_report.get("stale")), live_proc)
    elif case in REGRESSIONS:
        sub, rule, defect, fixed = REGRESSIONS[case]
        proc, report = run_analyze(os.path.join(REGRESSION, sub))
        findings = report["findings"]
        hits = [f for f in findings if f["file"] == defect]
        if len(hits) != 1 or hits[0]["rule"] != rule:
            return fail("%s: expected exactly one %s finding in %s, "
                        "got %r" % (case, rule, defect, hits), proc)
        if fixed is not None:
            leak = [f for f in findings if f["file"] == fixed]
            if leak:
                return fail("%s: fixed form %s produced findings: %r"
                            % (case, fixed, leak), proc)
    elif case == "baseline":
        tmpdir = tempfile.mkdtemp()
        baseline = os.path.join(tmpdir, "baseline.json")
        try:
            update = subprocess.run(
                [sys.executable, ANALYZE, "--root", FIXTURES,
                 "--frontend", "builtin", "--baseline", baseline,
                 "--update-baseline", "src"],
                capture_output=True, text=True)
            if update.returncode != 0:
                return fail("--update-baseline should exit 0, got %d"
                            % update.returncode, update)
            proc, report = run_analyze(
                FIXTURES, extra=["--baseline", baseline])
            if proc.returncode != 0:
                return fail("baselined rerun should exit 0, got %d"
                            % proc.returncode, proc)
            live = [f for f in report["findings"]
                    if not f["suppressed"] and not f["baselined"]]
            if live:
                return fail("baselined rerun left live findings: %r"
                            % live, proc)
            baselined = [f for f in report["findings"]
                         if f["baselined"]]
            if not baselined:
                return fail("baselined rerun marked nothing as "
                            "baselined", proc)
        finally:
            if os.path.exists(baseline):
                os.unlink(baseline)
            os.rmdir(tmpdir)
    elif case == "sarif":
        with tempfile.NamedTemporaryFile(suffix=".sarif",
                                         delete=False) as tmp:
            sarif_path = tmp.name
        try:
            proc, report = run_analyze(
                FIXTURES, extra=["--sarif", sarif_path])
            with open(sarif_path, encoding="utf-8") as f:
                sarif = json.load(f)
        finally:
            os.unlink(sarif_path)
        if sarif.get("version") != "2.1.0":
            return fail("SARIF version must be 2.1.0, got %r"
                        % sarif.get("version"), proc)
        run = sarif["runs"][0]
        if run["tool"]["driver"]["name"] != "accel-analyze":
            return fail("SARIF driver name mismatch: %r"
                        % run["tool"]["driver"]["name"], proc)
        results = run["results"]
        if len(results) != len(report["findings"]):
            return fail("SARIF results (%d) != JSON findings (%d)"
                        % (len(results), len(report["findings"])),
                        proc)
        suppressed = [r for r in results if r.get("suppressions")]
        want = sum(1 for f in report["findings"] if f["suppressed"])
        if len(suppressed) != want:
            return fail("SARIF suppressions (%d) != suppressed "
                        "findings (%d)" % (len(suppressed), want),
                        proc)
        rule_ids = {r["ruleId"] for r in results}
        declared = {r["id"] for r in
                    run["tool"]["driver"].get("rules", [])}
        if not rule_ids <= declared:
            return fail("SARIF results reference undeclared rules: %r"
                        % (rule_ids - declared), proc)
    else:
        print("unknown case:", case)
        return 2

    print("PASS:", case)
    return 0


if __name__ == "__main__":
    sys.exit(main())

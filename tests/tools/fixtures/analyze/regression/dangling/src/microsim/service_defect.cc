// Regression fixture: the planted dangling-capture defect, distilled
// from the ServiceSim completion-callback shape. A request record is
// built on the dispatch frame and captured by reference into the
// deferred completion callback; by the time the event fires the frame
// is gone. service_fixed.cc carries the corrected form.
//
// The analyze selftest pins: exactly 1 dangling-capture finding in
// this file and 0 in service_fixed.cc.
#include <cstdint>

namespace sim {
struct InlineCallback {
};
} // namespace sim

struct EventQueue {
    void scheduleIn(std::uint64_t delay, sim::InlineCallback &&cb);
};

struct Request {
    std::uint64_t id = 0;
    std::uint64_t arrival_cycle = 0;
    std::uint64_t service_cycles = 0;
};

struct ServiceSim {
    EventQueue eq_;
    std::uint64_t completed_ = 0;
    std::uint64_t latency_accum_ = 0;

    void dispatch(std::uint64_t now, std::uint64_t id) {
        Request req;
        req.id = id;
        req.arrival_cycle = now;
        req.service_cycles = 120;
        // DEFECT: req lives on this frame; the completion callback
        // runs after dispatch() has returned.
        eq_.scheduleIn(req.service_cycles, [&] {
            ++completed_;
            latency_accum_ += req.service_cycles;
        });
    }
};

// Regression fixture: the corrected form of service_defect.cc. The
// request record is moved into the completion callback, so nothing on
// the dispatch frame is referenced after it returns.
//
// The analyze selftest pins: 0 findings in this file.
#include <cstdint>
#include <utility>

namespace sim {
struct InlineCallback {
};
} // namespace sim

struct EventQueue {
    void scheduleIn(std::uint64_t delay, sim::InlineCallback &&cb);
};

struct Request {
    std::uint64_t id = 0;
    std::uint64_t arrival_cycle = 0;
    std::uint64_t service_cycles = 0;
};

struct ServiceSimFixed {
    EventQueue eq_;
    std::uint64_t completed_ = 0;
    std::uint64_t latency_accum_ = 0;

    void dispatch(std::uint64_t now, std::uint64_t id) {
        Request req;
        req.id = id;
        req.arrival_cycle = now;
        req.service_cycles = 120;
        // FIX: move the record into the callback's own storage.
        eq_.scheduleIn(req.service_cycles, [this, r = std::move(req)] {
            ++completed_;
            latency_accum_ += r.service_cycles;
        });
    }
};

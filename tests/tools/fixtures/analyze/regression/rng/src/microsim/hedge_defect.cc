// Regression fixture: the planted rng-discipline defect, distilled
// from the tier hedged-dispatch shape. The hedging decision lambda
// captures the tier's Rng by value, so the deferred hedge replays the
// same draws the primary path already consumed: a silent stream fork
// that changes results when the hedge timing shifts. hedge_fixed.cc
// carries the corrected form.
//
// The analyze selftest pins: exactly 1 rng-discipline finding in this
// file and 0 in hedge_fixed.cc.
#include <cstdint>

namespace accel {
struct Rng {
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);
    double uniform();
    bool chance(double p);
};
} // namespace accel

template <typename F> void deferHedge(std::uint64_t delay, F &&f);
void recordHedge(bool fired);

struct HedgedTier {
    accel::Rng rng_{7};
    double hedge_p_ = 0.05;

    void maybeHedge(std::uint64_t delay) {
        accel::Rng rng = rng_;
        // DEFECT: by-value capture forks the stream; the hedge replays
        // draws the primary dispatch path already consumed.
        deferHedge(delay, [rng, this]() mutable {
            recordHedge(rng.chance(hedge_p_));
        });
    }
};

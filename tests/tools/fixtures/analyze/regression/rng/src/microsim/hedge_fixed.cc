// Regression fixture: the corrected form of hedge_defect.cc. The
// hedge draw comes from a dedicated slot-seeded stream constructed for
// this decision, so the primary stream is never forked.
//
// The analyze selftest pins: 0 findings in this file.
#include <cstdint>

namespace accel {
struct Rng {
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);
    double uniform();
    bool chance(double p);
};
} // namespace accel

std::uint64_t mix(std::uint64_t x);
template <typename F> void deferHedge(std::uint64_t delay, F &&f);
void recordHedge(bool fired);

struct HedgedTierFixed {
    std::uint64_t seed_ = 7;
    std::uint64_t hedges_issued_ = 0;
    double hedge_p_ = 0.05;

    void maybeHedge(std::uint64_t delay) {
        // FIX: a fresh stream keyed on (seed, decision index) keeps the
        // draw deterministic without touching the primary stream.
        accel::Rng hedge_rng(mix(seed_ ^ (hedges_issued_ + 1)));
        ++hedges_issued_;
        const bool fire = hedge_rng.chance(hedge_p_);
        deferHedge(delay, [fire]() { recordHedge(fire); });
    }
};

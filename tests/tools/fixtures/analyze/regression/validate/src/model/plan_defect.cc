// Regression fixture: the planted validate-coverage defect, distilled
// from the FaultPlan config shape. A new floating-point knob was added
// to the struct and the parse path but never to validate(), so a NaN
// or negative value flows straight into the simulation.
//
// The analyze selftest pins: exactly 1 validate-coverage finding in
// this file, on spike_bias.
#include <cstdint>

void checkFinite(double v);
void checkUnit(double v);

struct FaultPlanCfg {
    double mtbf_scale = 1.0;
    double repair_scale = 1.0;
    double spike_bias = 0.0; // DEFECT: parsed below, never validated
    bool inject_spikes = false;

    void validate() const;
};

void
FaultPlanCfg::validate() const
{
    checkFinite(mtbf_scale);
    checkFinite(repair_scale);
}

FaultPlanCfg
faultPlanFromConfig(double mtbf, double repair, double bias)
{
    FaultPlanCfg c;
    c.mtbf_scale = mtbf;
    c.repair_scale = repair;
    c.spike_bias = bias;
    c.inject_spikes = bias != 0.0;
    return c;
}

// Fixture: metrics-accounting fires and non-fires.
//
// The analyze selftest pins the counts below; keep them in sync:
//   unsuppressed metrics-accounting fires: 3
//   suppressed metrics-accounting fires:   1
#include <cstdint>

struct WidgetStats {
    std::uint64_t produced = 0;   // written and reported: clean
    std::uint64_t lostOnly = 0;   // FIRE: incremented, never reported
    std::uint64_t ghostOnly = 0;  // FIRE: reported, never incremented
    std::uint64_t deadWeight = 0; // FIRE: neither
    std::uint64_t maxSeen = 0;    // self-update + real report: clean
    std::uint64_t shared = 0;     // also a WidgetConfig field: the
                                  // structural frontend cannot
                                  // attribute accesses, so skipped
    // accel-lint: allow(metrics-accounting) -- fixture: debug counter
    std::uint64_t quietlyLost = 0;
};

// Non-metrics struct sharing a field name: makes `shared` ambiguous.
struct WidgetConfig {
    std::uint64_t shared = 0;
};

void
collect(WidgetStats &s, std::uint64_t v)
{
    ++s.produced;
    s.lostOnly += 2;
    ++s.shared;
    s.quietlyLost += v;
    // Self-update: reading maxSeen here is not a report.
    s.maxSeen = s.maxSeen > v ? s.maxSeen : v;
}

std::uint64_t
report(const WidgetStats &s)
{
    return s.produced + s.ghostOnly + s.maxSeen;
}

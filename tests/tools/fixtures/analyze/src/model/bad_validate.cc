// Fixture: validate-coverage fires and non-fires.
//
// The analyze selftest pins the counts below; keep them in sync:
//   unsuppressed validate-coverage fires: 3
//   suppressed validate-coverage fires:   1

void check(double v);
void checkFlag(bool v);

struct SubCfg {
    double p = 0.0;
    void validate() const;
};

void
SubCfg::validate() const
{
    check(p);
}

enum class Mode { Fast, Safe };

struct BadConfig {
    double rate = 1.0;   // validated and parsed: clean
    double burst = 0.0;  // FIRE: never referenced in validate()
    bool enabled = false; // bool exempt from validate(); FIRE on the
                          // parse leg: badFromConfig cannot set it
    Mode mode = Mode::Fast; // enum: exempt from validate(); parsed
    SubCfg sub;          // FIRE: sub-validate() never invoked
    // accel-lint: allow(validate-coverage) -- fixture: legacy knob
    double legacyKnob = 0.0;

    void validate() const;
};

void
BadConfig::validate() const
{
    check(rate);
}

BadConfig
badFromConfig(int raw)
{
    BadConfig c;
    c.rate = raw * 1.0;
    c.burst = raw * 2.0;
    c.mode = raw > 0 ? Mode::Fast : Mode::Safe;
    c.sub.p = raw * 3.0;
    c.legacyKnob = raw * 4.0;
    return c;
}

struct GoodConfig {
    double window = 1.0;
    SubCfg sub;
    bool verbose = false;

    void validate() const;
};

void
GoodConfig::validate() const
{
    check(window);
    sub.validate();
    checkFlag(verbose);
}

// Fixture: approved patterns only; the analyzer must stay silent.
#include <cstddef>
#include <cstdint>
#include <utility>

namespace sim {
struct InlineCallback {
};
} // namespace sim

namespace accel {
struct Rng {
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);
    double uniform();
    std::uint64_t next64();
};
template <typename F> void parallelFor(std::size_t n, F &&f);
} // namespace accel

struct EventQueue {
    void scheduleIn(int delay, sim::InlineCallback &&cb);
    void run();
};

std::uint64_t mix(std::uint64_t x);
void sink(double v);
void check(double v);

struct CleanConfig {
    double rate = 1.0;
    bool strict = false;

    void validate() const;
};

void
CleanConfig::validate() const
{
    check(rate);
}

struct CleanStats {
    std::uint64_t handled = 0;
    double busyCycles = 0.0;
};

// A runtime system whose FromConfig factory pairs with the class:
// the private run state behind a `private:` label that is immediately
// followed by a nested struct must stay out of validate-coverage.
class CleanSystem {
  public:
    void validate() const;
    void spin();

  private:
    struct Slot {
        std::uint64_t token = 0;
    };

    double budgetCycles_ = 0.0;
    Slot slot_;
};

void
CleanSystem::validate() const
{
    check(budgetCycles_);
}

CleanSystem
cleanSystemFromConfig()
{
    CleanSystem sys;
    sys.validate();
    return sys;
}

struct Worker {
    EventQueue eq_;
    CleanStats stats_;
    accel::Rng rng_{2020};

    // Value captures into a deferred sink: nothing dangles.
    void scheduleByValue(std::uint64_t item) {
        eq_.scheduleIn(10, [this, item] { stats_.handled += item; });
    }

    // Member stream advance outside any parallel region: approved.
    double memberStream() { return rng_.uniform(); }
};

// Per-slot generators inside the parallel body: ACCEL_JOBS-safe.
void
slotIndexedSweep(std::uint64_t seed)
{
    accel::parallelFor(16, [seed](std::size_t i) {
        accel::Rng rng(mix(seed ^ (i + 1)));
        sink(rng.uniform());
    });
}

// Test/bench shape: the frame drives the loop, so [&] is safe.
void
driveLoop(Worker &w)
{
    std::uint64_t done = 0;
    w.eq_.scheduleIn(3, [&] { ++done; });
    w.eq_.run();
    w.stats_.busyCycles += static_cast<double>(done);
}

double
reportStats(const CleanStats &s)
{
    return static_cast<double>(s.handled) + s.busyCycles;
}

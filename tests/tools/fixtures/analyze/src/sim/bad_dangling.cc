// Fixture: dangling-capture fires and non-fires.
//
// The analyze selftest pins the counts below; keep them in sync:
//   unsuppressed dangling-capture fires: 3
//   suppressed dangling-capture fires:   1
#include <cstdint>

namespace sim {
struct InlineCallback {
};
} // namespace sim

struct EventQueue {
    void scheduleIn(int delay, sim::InlineCallback &&cb);
    void run();
};

// Auto-discovered sink: declares an InlineCallback&& parameter.
void dispatchResilient(int replica, sim::InlineCallback &&resume);

template <typename F> void apply(F &&f);
void forEach(int n, int step);

struct Sim {
    EventQueue eq_;
    std::uint64_t pending_ = 0;

    void refDefaultLeak() {
        std::uint64_t local = 7;
        // FIRE: [&] lambda referencing a frame local, deferred.
        eq_.scheduleIn(10, [&] { pending_ += local; });
    }

    void explicitRefLeak() {
        std::uint64_t acc = 0;
        // FIRE: explicit by-reference capture into a discovered sink.
        dispatchResilient(0, [&acc] { acc += 1; });
    }

    void timerLeak() {
        int x = 1;
        // FIRE: builtin schedule* sink name.
        eq_.scheduleIn(3, [&] { pending_ += static_cast<unsigned>(x); });
    }

    void suppressedLeak() {
        int y = 2;
        eq_.scheduleIn(4, [&] { // accel-lint: allow(dangling-capture) -- fixture
            pending_ += static_cast<unsigned>(y);
        });
    }

    void valueCaptureOk() {
        std::uint64_t n = 9;
        // no fire: value + this captures outlive the frame.
        eq_.scheduleIn(7, [this, n] { pending_ += n; });
    }

    void notASinkOk() {
        std::uint64_t k = 3;
        // no fire: apply() takes the callback by value and is not a
        // schedule sink.
        apply(sim::InlineCallback{});
        forEach(static_cast<int>(k), 1);
    }

    void drivesLoopOk() {
        int done = 0;
        // no fire: this frame drives the event loop itself, so its
        // locals outlive the scheduled event (the test/bench shape).
        eq_.scheduleIn(5, [&] { ++done; });
        eq_.run();
    }
};

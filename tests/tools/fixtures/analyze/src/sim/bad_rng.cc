// Fixture: rng-discipline fires and non-fires.
//
// The analyze selftest pins the counts below; keep them in sync:
//   unsuppressed rng-discipline fires: 5
//   suppressed rng-discipline fires:   1
#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>

namespace accel {
struct Rng {
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);
    double uniform();
    std::uint64_t next64();
    bool chance(double p);
};
template <typename F> void parallelFor(std::size_t n, F &&f);
} // namespace accel

std::uint64_t mix(std::uint64_t x);
void sink(double v);
void consume(std::uint64_t v);
template <typename F> void keep(F &&f);

void
distributionDraw(std::uint64_t seed)
{
    // FIRE: std::*_distribution in determinism-scoped code.
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    sink(dist.a() + static_cast<double>(seed));
}

void
sharedStreamInParallelFor(std::uint64_t seed)
{
    accel::Rng rng(seed);
    accel::parallelFor(8, [&](std::size_t i) {
        // FIRE: shared stream consumed in worker completion order.
        sink(rng.uniform() + static_cast<double>(i));
    });
}

double
staticStream()
{
    static accel::Rng tls(42);
    // FIRE: program-lifetime stream, call-order dependent.
    return tls.uniform();
}

double
suppressedStaticStream()
{
    static accel::Rng tls2(43);
    return tls2.uniform(); // accel-lint: allow(rng-discipline) -- fixture
}

void
valueCaptureFork(std::uint64_t seed)
{
    accel::Rng rng(seed);
    // FIRE: by-value capture forks the stream (both replay the same
    // draws).
    keep([rng]() mutable { return rng.next64(); });
    // FIRE: init-capture copy is the same fork.
    keep([r = rng]() mutable { return r.next64(); });
}

void
approvedPatternsOk(std::uint64_t seed, accel::Rng &caller_stream)
{
    // no fire: per-slot Rng constructed inside the parallelFor body.
    accel::parallelFor(8, [seed](std::size_t i) {
        accel::Rng rng(mix(seed ^ (i + 1)));
        sink(rng.uniform());
    });
    // no fire: moving the generator in continues the stream uniquely.
    accel::Rng rng(seed);
    keep([r = std::move(rng)]() mutable { return r.next64(); });
    // no fire: a caller-owned stream advanced through a reference.
    consume(caller_stream.next64());
}

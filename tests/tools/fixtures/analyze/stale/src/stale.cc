// Fixture: --audit-suppressions must flag the stale allow below.
//
// The analyze selftest pins: 1 stale-suppression finding (line 18),
// 0 stale findings for the live suppression (line 24).
#include <cstdint>

namespace sim {
struct InlineCallback {
};
} // namespace sim

struct EventQueue {
    void scheduleIn(int delay, sim::InlineCallback &&cb);
};

struct Holder {
    EventQueue eq_;
    // accel-lint: allow(dangling-capture) -- STALE: nothing fires here
    std::uint64_t count_ = 0;

    void liveSuppression() {
        int x = 1;
        // accel-lint: allow(dangling-capture) -- live: covers the fire below
        eq_.scheduleIn(2, [&] { count_ += static_cast<unsigned>(x); });
    }
};

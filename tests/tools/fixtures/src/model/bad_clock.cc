// Fixture: must fire banned-clock 4 times (steady_clock::now,
// system_clock::now, time(nullptr), clock()).
#include <chrono>
#include <ctime>

double
wallReads()
{
    auto a = std::chrono::steady_clock::now();
    auto b = std::chrono::system_clock::now();
    std::time_t t = time(nullptr);
    std::clock_t c = clock();
    (void)a;
    (void)b;
    return static_cast<double>(t) + static_cast<double>(c);
}

// Negative controls: none of these are clock reads.
double
notClockReads(double runtime)
{
    double uptime = runtime * 2;    // identifier merely contains "time"
    return uptime;
}

// Fixture: must fire header-standalone — std::vector and std::string
// are used without their includes, so this header only compiles when
// the including TU happens to pull them in first.
#pragma once

namespace fixture {

struct Report
{
    std::vector<double> shares;
    std::string title;
};

} // namespace fixture

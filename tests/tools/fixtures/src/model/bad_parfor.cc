// Fixture: must fire parfor-pushback exactly twice (push_back and
// emplace_back inside the loop body); the slot-indexed loop is a
// negative control.
#include <cstddef>
#include <functional>
#include <vector>

void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body);

std::vector<double>
completionOrdered(std::size_t n)
{
    std::vector<double> out;
    std::vector<int> tags;
    parallelFor(n, [&](std::size_t i) {
        out.push_back(static_cast<double>(i)); // must fire
        tags.emplace_back(static_cast<int>(i)); // must fire
    });

    std::vector<double> slots(n);
    parallelFor(n, [&](std::size_t i) {
        slots[i] = static_cast<double>(i) * 2.0; // slot write: fine
    });
    for (double s : slots)
        out.push_back(s); // outside parallelFor: fine
    return out;
}

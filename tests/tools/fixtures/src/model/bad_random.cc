// Fixture: must fire banned-random 4 times (rand, srand,
// std::random_device, std::mt19937) and nothing else.
#include <cstdlib>
#include <random>

int
unseededDraws()
{
    std::srand(7);
    int a = std::rand() % 10;
    std::random_device rd;
    std::mt19937 gen(rd());
    return a + static_cast<int>(gen());
}

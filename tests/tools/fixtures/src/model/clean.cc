// Fixture: a fully clean file — the self-test asserts zero findings
// here so the rules don't over-match idiomatic code.
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body);

double
deterministicSum(const std::map<std::string, double> &weights)
{
    double sum = 0.0;
    for (const auto &[name, w] : weights)
        sum += w; // ordered container: reproducible
    return sum;
}

std::vector<double>
slotIndexed(std::size_t n, const std::function<double(std::size_t)> &f)
{
    std::vector<double> out(n);
    parallelFor(n, [&](std::size_t i) { out[i] = f(i); });
    return out;
}

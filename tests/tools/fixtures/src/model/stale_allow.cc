// Fixture: accel_lint --audit-suppressions must flag the stale allow
// below (the lint selftest pins it at line 5). The file is otherwise
// clean, so normal lint runs are unaffected.

// accel-lint: allow(banned-random) -- STALE: nothing fires here
int stale_allow_anchor = 0;

// Fixture: every violation below carries a justified allow(); the
// suppression test asserts all findings are reported as suppressed and
// none count against the exit status.
#include <cstdlib>
#include <ctime>
#include <functional>
#include <utility>

int
grandfathered()
{
    // accel-lint: allow(banned-random) -- fixture: proves same-line and
    // preceding-comment suppression both work
    int a = std::rand();
    int b = std::rand(); // accel-lint: allow(banned-random) -- fixture
    std::time_t t =
        time(nullptr); // accel-lint: allow(banned-clock) -- fixture
    return a + b + static_cast<int>(t);
}

// accel-lint: allow(fn-by-value) -- fixture: multi-line justification
// comments must cover the first code line after the comment block
void takeByValue(std::function<void()> cb);

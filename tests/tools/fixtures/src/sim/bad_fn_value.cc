// Fixture: must fire fn-by-value exactly twice (declaration and
// definition below); the const&/&& parameters, the local variable, and
// the member are negative controls.
#include <functional>
#include <utility>

void runLater(std::function<void()> cb);

namespace fixture {

class Queue
{
  public:
    // by-value parameter: must fire
    void
    post(std::function<void()> cb)
    {
        stored_ = std::move(cb);
    }

    // sink parameter: must NOT fire
    void
    postSink(std::function<void()> &&cb)
    {
        stored_ = std::move(cb);
    }

    // borrow parameter: must NOT fire
    void
    postBorrow(const std::function<void()> &cb)
    {
        stored_ = cb;
    }

  private:
    std::function<void()> stored_; // member: must NOT fire
};

int
localsAreFine()
{
    std::function<int()> f = []() { return 3; }; // local: must NOT fire
    return f();
}

} // namespace fixture

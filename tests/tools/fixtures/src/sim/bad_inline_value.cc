// Fixture: must fire fn-by-value exactly three times (the alias
// declaration, the alias definition, and the InlineFunction
// definition below); the const&/&& parameters, the local variable,
// the member, and the alias declaration are negative controls.
#include <utility>

namespace sim {
template <typename Sig> class InlineFunction;
template <typename R, typename... Args>
class InlineFunction<R(Args...)>
{
  public:
    InlineFunction() = default;
    template <typename F> InlineFunction(F &&) {}
    R operator()(Args...) const { return R(); }
};
using InlineCallback = InlineFunction<void()>;
} // namespace sim

void runLater(sim::InlineCallback cb);

namespace fixture {

class Queue
{
  public:
    // by-value alias parameter: must fire
    void
    post(sim::InlineCallback cb)
    {
        stored_ = std::move(cb);
    }

    // by-value templated parameter: must fire
    void
    postScored(sim::InlineFunction<void(int)> scorer)
    {
        scorer(1);
    }

    // sink parameter: must NOT fire
    void
    postSink(sim::InlineCallback &&cb)
    {
        stored_ = std::move(cb);
    }

    // borrow parameter: must NOT fire
    void
    postBorrow(const sim::InlineFunction<void()> &cb)
    {
        cb();
    }

  private:
    sim::InlineCallback stored_; // member: must NOT fire
};

int
localsAreFine()
{
    sim::InlineFunction<int()> f = []() { return 3; }; // must NOT fire
    return f();
}

} // namespace fixture

// Fixture: must fire unordered-float-iter exactly twice (the two
// accumulating loops); the read-only loop and the ordered-map loop are
// negative controls.
#include <map>
#include <string>
#include <unordered_map>

double
hashOrderSum(const std::unordered_map<std::string, double> &weights)
{
    double sum = 0.0;
    for (const auto &[name, w] : weights) {
        sum += w; // accumulation in hash order: not reproducible
    }

    std::unordered_map<int, double> local;
    double total = 0.0;
    for (const auto &kv : local)
        total += kv.second;

    // Negative control: iteration without accumulation is fine.
    for (const auto &[name, w] : weights) {
        if (w < 0)
            return -1.0;
    }

    // Negative control: ordered map iteration is deterministic.
    std::map<std::string, double> ordered(weights.begin(),
                                          weights.end());
    for (const auto &[name, w] : ordered)
        sum += w;
    return sum + total;
}

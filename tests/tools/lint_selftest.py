#!/usr/bin/env python3
"""Self-test for tools/lint/accel_lint.py.

Runs the linter over the fixture corpus in tests/tools/fixtures (a
fake repo root, so the scoped determinism rules apply) and asserts
that every custom rule fires exactly where the fixtures say it must,
that justified allow() comments suppress, and that the exit status
reflects unsuppressed findings.

Usage: lint_selftest.py <case>
where <case> is a rule name, "suppression", "clean", "exit-code",
"audit-stale", or "sarif".
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "..", "..", "tools", "lint", "accel_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# Expected *unsuppressed* findings per rule: file -> count.
EXPECTED = {
    "banned-random": {"src/model/bad_random.cc": 4},
    "banned-clock": {"src/model/bad_clock.cc": 4},
    "unordered-float-iter": {"src/stats/bad_unordered.cc": 2},
    "fn-by-value": {"src/sim/bad_fn_value.cc": 2,
                    "src/sim/bad_inline_value.cc": 3},
    "parfor-pushback": {"src/model/bad_parfor.cc": 2},
    "header-standalone": {"src/model/bad_header.hh": 1},
}

# suppressed.cc must yield only suppressed findings, this many total.
SUPPRESSED_FILE = "src/model/suppressed.cc"
SUPPRESSED_COUNT = 4

CLEAN_FILE = "src/model/clean.cc"


def run_lint():
    with tempfile.NamedTemporaryFile(suffix=".json",
                                     delete=False) as tmp:
        report_path = tmp.name
    try:
        proc = subprocess.run(
            [sys.executable, LINT, "--root", FIXTURES,
             "--no-libclang", "--json", report_path, "src"],
            capture_output=True, text=True)
        with open(report_path, encoding="utf-8") as f:
            report = json.load(f)
    finally:
        os.unlink(report_path)
    return proc, report


def fail(msg, proc):
    print("FAIL:", msg)
    print("--- linter stdout ---")
    print(proc.stdout)
    print("--- linter stderr ---")
    print(proc.stderr)
    return 1


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    case = sys.argv[1]
    proc, report = run_lint()
    findings = report["findings"]

    def count(rule, path, suppressed=False):
        return sum(1 for f in findings
                   if f["rule"] == rule and f["file"] == path and
                   f["suppressed"] == suppressed)

    if case in EXPECTED:
        for path, want in EXPECTED[case].items():
            got = count(case, path)
            if got != want:
                return fail("rule %s: expected %d finding(s) in %s, "
                            "got %d" % (case, want, path, got), proc)
        # The rule must not leak into the clean fixture.
        stray = sum(1 for f in findings
                    if f["rule"] == case and f["file"] == CLEAN_FILE)
        if stray:
            return fail("rule %s fired %d time(s) on the clean "
                        "fixture" % (case, stray), proc)
    elif case == "suppression":
        active = [f for f in findings
                  if f["file"] == SUPPRESSED_FILE and
                  not f["suppressed"]]
        if active:
            return fail("suppressed.cc has %d unsuppressed finding(s):"
                        " %r" % (len(active), active), proc)
        got = sum(1 for f in findings
                  if f["file"] == SUPPRESSED_FILE and f["suppressed"])
        if got != SUPPRESSED_COUNT:
            return fail("suppressed.cc: expected %d suppressed "
                        "finding(s), got %d" % (SUPPRESSED_COUNT, got),
                        proc)
    elif case == "clean":
        stray = [f for f in findings if f["file"] == CLEAN_FILE]
        if stray:
            return fail("clean fixture produced findings: %r" % stray,
                        proc)
    elif case == "exit-code":
        if proc.returncode != 1:
            return fail("expected exit 1 with unsuppressed findings, "
                        "got %d" % proc.returncode, proc)
        # A run restricted to the clean fixture must exit 0.
        clean_proc = subprocess.run(
            [sys.executable, LINT, "--root", FIXTURES, "--no-libclang",
             "--rules",
             "banned-random,banned-clock,unordered-float-iter,"
             "fn-by-value,parfor-pushback",
             os.path.join("src", "model", "clean.cc")],
            capture_output=True, text=True)
        if clean_proc.returncode != 0:
            return fail("expected exit 0 on the clean fixture, got %d"
                        % clean_proc.returncode, clean_proc)
    elif case == "audit-stale":
        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as tmp:
            report_path = tmp.name
        try:
            audit = subprocess.run(
                [sys.executable, LINT, "--root", FIXTURES,
                 "--no-libclang", "--audit-suppressions",
                 "--json", report_path, "src"],
                capture_output=True, text=True)
            with open(report_path, encoding="utf-8") as f:
                audit_report = json.load(f)
        finally:
            os.unlink(report_path)
        if audit.returncode != 1:
            return fail("expected exit 1 from the stale audit, got %d"
                        % audit.returncode, audit)
        stale = audit_report.get("stale", [])
        if len(stale) != 1 or \
                stale[0]["file"] != "src/model/stale_allow.cc" or \
                stale[0]["line"] != 5:
            return fail("expected exactly one stale suppression at "
                        "src/model/stale_allow.cc:5, got %r" % stale,
                        audit)
    elif case == "sarif":
        with tempfile.NamedTemporaryFile(suffix=".sarif",
                                         delete=False) as tmp:
            sarif_path = tmp.name
        try:
            sarif_proc = subprocess.run(
                [sys.executable, LINT, "--root", FIXTURES,
                 "--no-libclang", "--sarif", sarif_path, "src"],
                capture_output=True, text=True)
            with open(sarif_path, encoding="utf-8") as f:
                sarif = json.load(f)
        finally:
            os.unlink(sarif_path)
        if sarif.get("version") != "2.1.0":
            return fail("SARIF version must be 2.1.0, got %r"
                        % sarif.get("version"), sarif_proc)
        run = sarif["runs"][0]
        if run["tool"]["driver"]["name"] != "accel-lint":
            return fail("SARIF driver name mismatch: %r"
                        % run["tool"]["driver"]["name"], sarif_proc)
        results = run["results"]
        if len(results) != len(findings):
            return fail("SARIF results (%d) != JSON findings (%d)"
                        % (len(results), len(findings)), sarif_proc)
        keys = [(f["file"], f["line"], f["rule"]) for f in findings]
        if len(keys) != len(set(keys)):
            return fail("JSON findings contain (file, line, rule) "
                        "duplicates after dedupe", proc)
        suppressed = [r for r in results if r.get("suppressions")]
        want = sum(1 for f in findings if f["suppressed"])
        if len(suppressed) != want:
            return fail("SARIF suppressions (%d) != suppressed "
                        "findings (%d)" % (len(suppressed), want),
                        sarif_proc)
    else:
        print("unknown case:", case)
        return 2

    print("PASS:", case)
    return 0


if __name__ == "__main__":
    sys.exit(main())

/** @file Tests for the CSV emitter. */

#include "util/csv.hh"

#include <sstream>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

TEST(Csv, HeaderWrittenOnConstruction)
{
    std::ostringstream os;
    CsvWriter w(os, {"a", "b"});
    EXPECT_EQ(os.str(), "a,b\n");
}

TEST(Csv, RowsAppend)
{
    std::ostringstream os;
    CsvWriter w(os, {"x", "y"});
    w.row({"1", "2"});
    w.row({"3", "4"});
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
    EXPECT_EQ(w.rows(), 2u);
}

TEST(Csv, QuotesFieldsWithCommas)
{
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
}

TEST(Csv, QuotesEmbeddedQuotes)
{
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, QuotesNewlines)
{
    EXPECT_EQ(CsvWriter::quote("a\nb"), "\"a\nb\"");
}

TEST(Csv, PlainFieldsUnquoted)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
}

TEST(Csv, MismatchedRowPanics)
{
    std::ostringstream os;
    CsvWriter w(os, {"a", "b"});
    EXPECT_THROW(w.row({"just-one"}), PanicError);
}

TEST(Csv, NoColumnsPanics)
{
    std::ostringstream os;
    EXPECT_THROW(CsvWriter(os, {}), PanicError);
}

} // namespace
} // namespace accel

/** @file Tests for status-message and error-reporting helpers. */

#include "util/logging.hh"

#include <gtest/gtest.h>

namespace accel {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(Logging, FatalMessageIsPrefixed)
{
    try {
        fatal("something the user did");
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: something the user did");
    }
}

TEST(Logging, PanicMessageIsPrefixed)
{
    try {
        panic("a bug");
        FAIL() << "panic returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: a bug");
    }
}

TEST(Logging, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "unused"));
}

TEST(Logging, RequireThrowsOnFalse)
{
    EXPECT_THROW(require(false, "violated"), FatalError);
}

TEST(Logging, EnsurePassesOnTrue)
{
    EXPECT_NO_THROW(ensure(true, "unused"));
}

TEST(Logging, EnsureThrowsOnFalse)
{
    EXPECT_THROW(ensure(false, "violated"), PanicError);
}

TEST(Logging, FatalErrorIsRuntimeError)
{
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, PanicErrorIsLogicError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
}

TEST(Logging, SetLogLevelReturnsPrevious)
{
    LogLevel prev = setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(prev);
    EXPECT_EQ(logLevel(), prev);
}

TEST(Logging, InformAndWarnDoNotThrowWhenSilenced)
{
    LogLevel prev = setLogLevel(LogLevel::Silent);
    EXPECT_NO_THROW(inform("status"));
    EXPECT_NO_THROW(warn("odd"));
    setLogLevel(prev);
}

TEST(Logging, RateLimitedWarnerPrintsFirstNThenSuppresses)
{
    RateLimitedWarner w("flaky device", /*firstN=*/2);
    testing::internal::CaptureStderr();
    for (int i = 0; i < 5; ++i)
        w.warn("event " + std::to_string(i));
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("flaky device: event 0"), std::string::npos);
    EXPECT_NE(err.find("flaky device: event 1"), std::string::npos);
    EXPECT_EQ(err.find("event 2"), std::string::npos);
    EXPECT_NE(err.find("further warnings suppressed"),
              std::string::npos);
    EXPECT_EQ(w.occurrences(), 5u);
    EXPECT_EQ(w.suppressed(), 3u);
}

TEST(Logging, RateLimitedWarnerFlushReportsAndResetsSuppressed)
{
    RateLimitedWarner w("retry", /*firstN=*/1);
    testing::internal::CaptureStderr();
    for (int i = 0; i < 4; ++i)
        w.warn("x");
    w.flushSummary();
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("retry: suppressed 3 similar warning(s)"),
              std::string::npos);
    EXPECT_EQ(w.suppressed(), 0u); // flushed
    EXPECT_EQ(w.occurrences(), 4u);

    // A flush with nothing suppressed prints nothing.
    testing::internal::CaptureStderr();
    w.flushSummary();
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Logging, RateLimitedWarnerCountsEvenWhenSilenced)
{
    // Determinism requirement: suppression is count-based, so the
    // counters must not depend on whether stderr output is enabled.
    LogLevel prev = setLogLevel(LogLevel::Silent);
    RateLimitedWarner w("quiet", 3);
    for (int i = 0; i < 10; ++i)
        w.warn("x");
    EXPECT_EQ(w.occurrences(), 10u);
    EXPECT_EQ(w.suppressed(), 7u);
    setLogLevel(prev);
}

} // namespace
} // namespace accel

/** @file Tests for status-message and error-reporting helpers. */

#include "util/logging.hh"

#include <gtest/gtest.h>

namespace accel {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(Logging, FatalMessageIsPrefixed)
{
    try {
        fatal("something the user did");
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: something the user did");
    }
}

TEST(Logging, PanicMessageIsPrefixed)
{
    try {
        panic("a bug");
        FAIL() << "panic returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: a bug");
    }
}

TEST(Logging, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "unused"));
}

TEST(Logging, RequireThrowsOnFalse)
{
    EXPECT_THROW(require(false, "violated"), FatalError);
}

TEST(Logging, EnsurePassesOnTrue)
{
    EXPECT_NO_THROW(ensure(true, "unused"));
}

TEST(Logging, EnsureThrowsOnFalse)
{
    EXPECT_THROW(ensure(false, "violated"), PanicError);
}

TEST(Logging, FatalErrorIsRuntimeError)
{
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, PanicErrorIsLogicError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
}

TEST(Logging, SetLogLevelReturnsPrevious)
{
    LogLevel prev = setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(prev);
    EXPECT_EQ(logLevel(), prev);
}

TEST(Logging, InformAndWarnDoNotThrowWhenSilenced)
{
    LogLevel prev = setLogLevel(LogLevel::Silent);
    EXPECT_NO_THROW(inform("status"));
    EXPECT_NO_THROW(warn("odd"));
    setLogLevel(prev);
}

} // namespace
} // namespace accel

/** @file Tests for the deterministic PCG32 generator. */

#include "util/rng.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, DifferentStreamsDiverge)
{
    Rng a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(4);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(10.0, 20.0);
        EXPECT_GE(v, 10.0);
        EXPECT_LT(v, 20.0);
    }
}

TEST(Rng, BelowBoundRespected)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowZeroIsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(8);
    bool seen[5] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(5)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(10);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(100.0);
    EXPECT_NEAR(sum / n, 100.0, 1.5);
}

TEST(Rng, ExponentialRejectsNonPositiveMean)
{
    Rng rng(11);
    EXPECT_THROW(rng.exponential(0.0), FatalError);
    EXPECT_THROW(rng.exponential(-1.0), FatalError);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(12);
    double sum = 0, sum2 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, LogNormalMeanMatches)
{
    // E[LN(mu, s)] = exp(mu + s^2 / 2).
    Rng rng(13);
    double mu = 2.0, sigma = 0.5;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.logNormal(mu, sigma);
    EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2), 0.15);
}

TEST(Rng, LogNormalRejectsNegativeSigma)
{
    Rng rng(14);
    EXPECT_THROW(rng.logNormal(0.0, -1.0), FatalError);
}

TEST(Rng, Below64RespectsBound)
{
    Rng rng(15);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below64(bound), bound);
    }
    EXPECT_EQ(rng.below64(0), 0u);
    EXPECT_EQ(rng.below64(1), 0u);
}

TEST(Rng, Below64ReachesBeyond32Bits)
{
    // Regression for the reservoir truncation bug: a 32-bit draw can
    // never land above 2^32, silently pinning long streams.
    Rng rng(16);
    std::uint64_t bound = 1ull << 40;
    bool above_32_bits = false;
    for (int i = 0; i < 4096 && !above_32_bits; ++i)
        above_32_bits = rng.below64(bound) > (1ull << 32);
    EXPECT_TRUE(above_32_bits);
}

TEST(Rng, Below64UniformAcrossBuckets)
{
    // Chi-square against uniformity with a bound chosen so plain
    // modulo would be visibly biased (bound = 3/4 of 2^64 means
    // low results occur twice as often under `next64() % bound`).
    Rng rng(17);
    std::uint64_t bound = (3ull << 62); // 0.75 * 2^64
    constexpr int kBuckets = 16;
    constexpr int kDraws = 160000;
    int counts[kBuckets] = {};
    double width = static_cast<double>(bound) / kBuckets;
    for (int i = 0; i < kDraws; ++i) {
        int b = static_cast<int>(
            static_cast<double>(rng.below64(bound)) / width);
        ++counts[b < kBuckets ? b : kBuckets - 1];
    }
    double expected = static_cast<double>(kDraws) / kBuckets;
    double chi2 = 0;
    for (int c : counts) {
        double d = c - expected;
        chi2 += d * d / expected;
    }
    // 15 dof: p=0.001 critical value is 37.7.
    EXPECT_LT(chi2, 37.7);
}

} // namespace
} // namespace accel

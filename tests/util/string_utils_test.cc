/** @file Tests for string helpers and numeric parsing. */

#include "util/string_utils.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

TEST(Trim, StripsBothEnds)
{
    EXPECT_EQ(trim("  hello \t"), "hello");
}

TEST(Trim, EmptyAndWhitespaceOnly)
{
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Trim, PreservesInteriorWhitespace)
{
    EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Split, BasicFields)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields)
{
    auto parts = split("a,,c,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiterYieldsSingleField)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(ToLower, MixedCase)
{
    EXPECT_EQ(toLower("AbC-123"), "abc-123");
}

TEST(StartsEndsWith, Basics)
{
    EXPECT_TRUE(startsWith("offload", "off"));
    EXPECT_FALSE(startsWith("off", "offload"));
    EXPECT_TRUE(endsWith("offload", "load"));
    EXPECT_FALSE(endsWith("load", "offload"));
}

TEST(Join, WithSeparator)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(ParseDouble, ScientificNotation)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.3e9"), 2.3e9);
    EXPECT_DOUBLE_EQ(parseDouble("  -1.5 "), -1.5);
}

TEST(ParseDouble, RejectsGarbage)
{
    EXPECT_THROW(parseDouble("12abc"), FatalError);
    EXPECT_THROW(parseDouble(""), FatalError);
    EXPECT_THROW(parseDouble("1.2.3"), FatalError);
}

TEST(ParseCount, IntegralScientific)
{
    EXPECT_EQ(parseCount("298951"), 298951u);
    EXPECT_EQ(parseCount("2.5e9"), 2500000000u);
}

TEST(ParseCount, RejectsNegativeAndFractional)
{
    EXPECT_THROW(parseCount("-5"), FatalError);
    EXPECT_THROW(parseCount("1.5"), FatalError);
}

TEST(ParseCount, RejectsOverflowAndNonFinite)
{
    // uint64 max is ~1.8e19; anything at or beyond must throw rather
    // than wrap, and non-finite values must never reach the
    // float→integer cast (undefined behaviour for NaN/inf).
    EXPECT_THROW(parseCount("2e19"), FatalError);
    EXPECT_THROW(parseCount("1e300"), FatalError);
    EXPECT_THROW(parseCount("inf"), FatalError);
    EXPECT_THROW(parseCount("nan"), FatalError);
    EXPECT_THROW(parseCount("-nan"), FatalError);
}

TEST(ParseCount, AcceptsLargeExactValues)
{
    EXPECT_EQ(parseCount("1e18"), 1000000000000000000u);
    EXPECT_EQ(parseCount("0"), 0u);
}

TEST(ParseDouble, OverflowToInfinityRejected)
{
    // strtod sets ERANGE for 1e400; the parser must surface that as
    // a parse failure, not return inf.
    EXPECT_THROW(parseDouble("1e400"), FatalError);
    EXPECT_THROW(parseDouble("-1e400"), FatalError);
}

TEST(ParseDouble, WhitespaceOnlyRejected)
{
    EXPECT_THROW(parseDouble("   \t  "), FatalError);
}

TEST(ParseBool, AllSpellings)
{
    EXPECT_TRUE(parseBool("true"));
    EXPECT_TRUE(parseBool("YES"));
    EXPECT_TRUE(parseBool("On"));
    EXPECT_TRUE(parseBool("1"));
    EXPECT_FALSE(parseBool("false"));
    EXPECT_FALSE(parseBool("no"));
    EXPECT_FALSE(parseBool("OFF"));
    EXPECT_FALSE(parseBool("0"));
}

TEST(ParseBool, RejectsOther)
{
    EXPECT_THROW(parseBool("maybe"), FatalError);
}

} // namespace
} // namespace accel

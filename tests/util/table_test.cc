/** @file Tests for the ASCII table and bar renderers. */

#include "util/table.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "0.15"});
    t.addRow({"A", "27"});
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("27"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsWidenToWidestCell)
{
    TextTable t({"x"});
    t.addRow({"a-very-long-cell"});
    std::string s = t.str();
    // Separator must span the widest cell.
    EXPECT_NE(s.find(std::string(16, '-')), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TextTable, RightAlignment)
{
    TextTable t({"n", "value"});
    t.setAlign(1, Align::Right);
    t.addRow({"x", "1"});
    std::string s = t.str();
    // "value" is 5 wide; a right-aligned "1" is preceded by spaces.
    EXPECT_NE(s.find("    1"), std::string::npos);
}

TEST(TextTable, SeparatorRow)
{
    TextTable t({"a"});
    t.addRow({"one"});
    t.addSeparator();
    t.addRow({"two"});
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_NE(t.str().find("---"), std::string::npos);
}

TEST(TextTable, EmptyHeadersPanic)
{
    EXPECT_THROW(TextTable({}), PanicError);
}

TEST(PercentBar, FullAndEmpty)
{
    EXPECT_EQ(percentBar(100, 10), "##########");
    EXPECT_EQ(percentBar(0, 10), "");
}

TEST(PercentBar, Rounds)
{
    EXPECT_EQ(percentBar(50, 10), "#####");
    EXPECT_EQ(percentBar(54.9, 10).size(), 5u);
    EXPECT_EQ(percentBar(55.1, 10).size(), 6u);
}

TEST(PercentBar, ClampsOutOfRange)
{
    EXPECT_EQ(percentBar(150, 10).size(), 10u);
    EXPECT_EQ(percentBar(-5, 10).size(), 0u);
}

TEST(Format, FixedDecimals)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtF(2.0, 0), "2");
}

TEST(Format, Percent)
{
    EXPECT_EQ(fmtPct(0.157, 1), "15.7%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

} // namespace
} // namespace accel

/** @file Tests for the parallel experiment runner's worker pool. */

#include "util/thread_pool.hh"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

/** Restore the global pool width after each test. */
class ThreadPoolTest : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::setWorkers(0); }
};

TEST_F(ThreadPoolTest, EveryIndexRunsExactlyOnce)
{
    for (size_t workers : {1u, 2u, 8u}) {
        ThreadPool pool(workers);
        std::vector<std::atomic<int>> hits(100);
        pool.parallelFor(hits.size(),
                         [&](size_t i) { hits[i].fetch_add(1); });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST_F(ThreadPoolTest, SlotIndexedOutputMatchesSerial)
{
    auto square = [](size_t i) {
        return static_cast<double>(i) * static_cast<double>(i);
    };
    std::vector<double> serial(1000);
    for (size_t i = 0; i < serial.size(); ++i)
        serial[i] = square(i);

    ThreadPool pool(8);
    std::vector<double> parallel(serial.size());
    pool.parallelFor(parallel.size(),
                     [&](size_t i) { parallel[i] = square(i); });
    EXPECT_EQ(parallel, serial);
}

TEST_F(ThreadPoolTest, ZeroAndOneIterationBatches)
{
    ThreadPool pool(4);
    int runs = 0;
    pool.parallelFor(0, [&](size_t) { ++runs; });
    EXPECT_EQ(runs, 0);
    pool.parallelFor(1, [&](size_t) { ++runs; });
    EXPECT_EQ(runs, 1);
}

TEST_F(ThreadPoolTest, SingleWorkerRunsInlineInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workers(), 1u);
    std::vector<size_t> order;
    // accel-lint: allow(parfor-pushback) -- 1-worker runs inline; the
    // in-index-order execution is itself the property under test here
    pool.parallelFor(10, [&](size_t i) { order.push_back(i); });
    std::vector<size_t> expected(10);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST_F(ThreadPoolTest, ExceptionPropagatesWithoutDeadlock)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](size_t i) {
                             if (i == 13)
                                 throw std::runtime_error("worker 13");
                         }),
        std::runtime_error);
    // The pool must stay usable after an aborted batch.
    std::atomic<int> runs{0};
    pool.parallelFor(8, [&](size_t) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(), 8);
}

TEST_F(ThreadPoolTest, FatalErrorTypePreserved)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     4, [](size_t) { fatal("bad experiment config"); }),
                 FatalError);
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInline)
{
    ThreadPool::setWorkers(4);
    std::atomic<int> inner_runs{0};
    // A nested call on the busy global pool must not deadlock; it runs
    // the inner loop inline on the worker.
    parallelFor(4, [&](size_t) {
        parallelFor(8, [&](size_t) { inner_runs.fetch_add(1); });
    });
    EXPECT_EQ(inner_runs.load(), 32);
}

TEST_F(ThreadPoolTest, ParallelMapPreservesInputOrder)
{
    ThreadPool::setWorkers(8);
    std::vector<int> inputs(257);
    std::iota(inputs.begin(), inputs.end(), 0);
    std::vector<int> out =
        parallelMap(inputs, [](int v) { return v * 3; });
    ASSERT_EQ(out.size(), inputs.size());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST_F(ThreadPoolTest, SetWorkersReconfiguresGlobalPool)
{
    ThreadPool::setWorkers(3);
    EXPECT_EQ(ThreadPool::global().workers(), 3u);
    ThreadPool::setWorkers(1);
    EXPECT_EQ(ThreadPool::global().workers(), 1u);
    std::atomic<int> runs{0};
    parallelFor(5, [&](size_t) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(), 5);
}

TEST_F(ThreadPoolTest, DefaultWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

TEST_F(ThreadPoolTest, ManySmallBatchesReuseWorkers)
{
    ThreadPool pool(4);
    std::atomic<long> total{0};
    for (int batch = 0; batch < 200; ++batch)
        pool.parallelFor(16, [&](size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 200 * 16);
}

} // namespace
} // namespace accel

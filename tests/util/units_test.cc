/** @file Tests for unit formatting and parsing. */

#include "util/units.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

TEST(FormatBytes, Suffixes)
{
    EXPECT_EQ(formatBytes(512), "512.0B");
    EXPECT_EQ(formatBytes(4096), "4.00KiB");
    EXPECT_EQ(formatBytes(1048576), "1.00MiB");
}

TEST(FormatCount, EngineeringSuffixes)
{
    EXPECT_EQ(formatCount(950), "950");
    EXPECT_EQ(formatCount(2.3e9), "2.30G");
    EXPECT_EQ(formatCount(15008), "15.01K");
}

TEST(FormatCount, NegativeAndHuge)
{
    EXPECT_EQ(formatCount(-2500), "-2.50K");
    EXPECT_EQ(formatCount(3.2e12), "3.20T");
    EXPECT_EQ(formatCount(0), "0");
}

TEST(ParseBytes, PlainNumbers)
{
    EXPECT_EQ(parseBytes("512"), 512u);
    EXPECT_EQ(parseBytes("0"), 0u);
}

TEST(ParseBytes, BinarySuffixes)
{
    EXPECT_EQ(parseBytes("4K"), 4096u);
    EXPECT_EQ(parseBytes("2KiB"), 2048u);
    EXPECT_EQ(parseBytes("1M"), 1048576u);
    EXPECT_EQ(parseBytes("1MiB"), 1048576u);
    EXPECT_EQ(parseBytes("1G"), 1073741824u);
}

TEST(ParseBytes, FractionalSizes)
{
    EXPECT_EQ(parseBytes("1.5K"), 1536u);
}

TEST(ParseBytes, ExplicitByteSuffix)
{
    EXPECT_EQ(parseBytes("64B"), 64u);
    EXPECT_EQ(parseBytes("64b"), 64u);
}

TEST(ParseBytes, RejectsMalformed)
{
    EXPECT_THROW(parseBytes(""), FatalError);
    EXPECT_THROW(parseBytes("abc"), FatalError);
    EXPECT_THROW(parseBytes("-4K"), FatalError);
}

TEST(ParseBytes, RejectsWhitespaceAndBareSuffix)
{
    EXPECT_THROW(parseBytes("   "), FatalError);
    EXPECT_THROW(parseBytes("K"), FatalError);
    EXPECT_THROW(parseBytes("KiB"), FatalError);
}

TEST(ParseBytes, RejectsOverflowAndNonFinite)
{
    // llround beyond long long (or on NaN/inf) is undefined; the
    // parser must throw instead. 1e19 > 2^63-1 ≈ 9.2e18.
    EXPECT_THROW(parseBytes("1e19"), FatalError);
    EXPECT_THROW(parseBytes("1e300G"), FatalError);
    EXPECT_THROW(parseBytes("inf"), FatalError);
    EXPECT_THROW(parseBytes("nan"), FatalError);
    EXPECT_THROW(parseBytes("nanKiB"), FatalError);
}

TEST(ParseBytes, NegativeFractionRejected)
{
    EXPECT_THROW(parseBytes("-0.5K"), FatalError);
}

TEST(ParseBytes, CaseInsensitiveSuffix)
{
    EXPECT_EQ(parseBytes("4k"), 4096u);
    EXPECT_EQ(parseBytes("4kib"), 4096u);
}

} // namespace
} // namespace accel

/** @file Tests for before/after breakdowns (Figs. 16-18 numbers). */

#include "workload/before_after.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "workload/request_factory.hh"

namespace accel::workload {
namespace {

using model::ThreadingDesign;

TEST(BeforeAfter, Fig16AesNiNumbers)
{
    // Paper: "AES-NI accelerates the secure IO functionality by 73%,
    // saving 12.8% of Cache1's cycles."
    CaseStudy cs = aesNiCaseStudy();
    BeforeAfter ba = beforeAfterBreakdown(
        profile(ServiceId::Cache1), Functionality::SecureInsecureIO,
        cs.publishedParams, cs.design, /*accelOnHost=*/true);
    EXPECT_NEAR(ba.freedPercent, 12.8, 1.0);
    // Improvement of the secure-IO *bar* given encryption is 16.6 of
    // the 38-point secure-IO share. The paper's 73% refers to the
    // encrypted portion; the whole bar shrinks proportionally less.
    EXPECT_GT(ba.targetImprovementPercent, 25);
    EXPECT_LT(ba.targetImprovementPercent, 45);
}

TEST(BeforeAfter, Fig17OffChipEncryptionFreesMost)
{
    CaseStudy cs = offChipEncryptionCaseStudy();
    BeforeAfter ba = beforeAfterBreakdown(
        profile(ServiceId::Cache3), Functionality::SecureInsecureIO,
        cs.publishedParams, cs.design, /*accelOnHost=*/false);
    // alpha = 19.15%, overheads n*(L)/C ~ 11.2%: frees ~8%.
    EXPECT_NEAR(ba.freedPercent, 8.0, 1.0);
}

TEST(BeforeAfter, Fig18InferenceFullyOffloaded)
{
    CaseStudy cs = remoteInferenceCaseStudy();
    BeforeAfter ba = beforeAfterBreakdown(
        profile(ServiceId::Ads1), Functionality::PredictionRanking,
        cs.publishedParams, cs.design, /*accelOnHost=*/false,
        Functionality::SecureInsecureIO);
    // alpha = 52% leaves the host; o0-driven I/O overhead comes back
    // in the I/O bar, so the inference bar is fully freed.
    EXPECT_GT(ba.freedPercent, 35);
    EXPECT_NEAR(ba.targetImprovementPercent, 100, 1e-6);
    for (const auto &s : ba.shifts) {
        if (s.functionality == Functionality::SecureInsecureIO) {
            EXPECT_GT(s.afterPercent, 17); // grew by the extra I/O
        }
    }
    // Shares re-normalize to ~100.
    double total = 0;
    for (const auto &s : ba.shifts)
        total += s.afterPercent;
    EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(BeforeAfter, NonTargetSharesGrowProportionally)
{
    CaseStudy cs = aesNiCaseStudy();
    BeforeAfter ba = beforeAfterBreakdown(
        profile(ServiceId::Cache1), Functionality::SecureInsecureIO,
        cs.publishedParams, cs.design, true);
    for (const auto &s : ba.shifts) {
        if (s.functionality == Functionality::SecureInsecureIO)
            continue;
        if (s.beforePercent > 0) {
            EXPECT_GT(s.afterPercent, s.beforePercent);
        }
    }
}

TEST(BeforeAfter, KernelLargerThanFunctionalityRejected)
{
    model::Params p = aesNiCaseStudy().publishedParams;
    p.alpha = 0.9; // bigger than any single functionality share
    EXPECT_THROW(beforeAfterBreakdown(profile(ServiceId::Cache1),
                                      Functionality::SecureInsecureIO,
                                      p, ThreadingDesign::Sync, true),
                 FatalError);
}

} // namespace
} // namespace accel::workload

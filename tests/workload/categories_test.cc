/** @file Tests for category taxonomies. */

#include "workload/categories.hh"

#include <set>

#include <gtest/gtest.h>

namespace accel::workload {
namespace {

TEST(Categories, CountsMatchPaperTaxonomies)
{
    EXPECT_EQ(allLeafCategories().size(), 9u);     // Table 2
    EXPECT_EQ(allFunctionalities().size(), 10u);   // Table 3
    EXPECT_EQ(allMemoryLeaves().size(), 6u);       // Fig. 3
    EXPECT_EQ(allCopyOrigins().size(), 4u);        // Fig. 4
    EXPECT_EQ(allKernelLeaves().size(), 6u);       // Fig. 5
    EXPECT_EQ(allSyncLeaves().size(), 4u);         // Fig. 6
    EXPECT_EQ(allClibLeaves().size(), 8u);         // Fig. 7
}

TEST(Categories, NamesUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (LeafCategory c : allLeafCategories()) {
        std::string n = toString(c);
        EXPECT_FALSE(n.empty());
        EXPECT_TRUE(names.insert(n).second);
    }
    names.clear();
    for (Functionality c : allFunctionalities()) {
        std::string n = toString(c);
        EXPECT_FALSE(n.empty());
        EXPECT_TRUE(names.insert(n).second);
    }
}

TEST(Categories, PaperLabelSpellings)
{
    EXPECT_EQ(toString(LeafCategory::Zstd), "ZSTD");
    EXPECT_EQ(toString(LeafCategory::Ssl), "SSL");
    EXPECT_EQ(toString(Functionality::SecureInsecureIO),
              "Secure + Insecure IO");
    EXPECT_EQ(toString(Functionality::Serialization),
              "Serialization/Deserialization");
    EXPECT_EQ(toString(MemoryLeaf::Copy), "Memory-Copy");
    EXPECT_EQ(toString(SyncLeaf::CompareExchangeSwap),
              "Compare-Exchange-Swap");
}

} // namespace
} // namespace accel::workload

/** @file Tests for the granularity CDFs (Figs. 15, 19, 21, 22). */

#include "workload/granularities.hh"

#include <gtest/gtest.h>

namespace accel::workload {
namespace {

TEST(Granularities, AllServicesHaveAllDistributions)
{
    for (ServiceId id : allServices()) {
        EXPECT_NE(encryptionSizes(id), nullptr);
        EXPECT_NE(compressionSizes(id), nullptr);
        EXPECT_NE(copySizes(id), nullptr);
        EXPECT_NE(allocationSizes(id), nullptr);
    }
}

TEST(Fig15, Cache1EncryptionMostlySmall)
{
    auto d = encryptionSizes(ServiceId::Cache1);
    // "<512B are frequently encrypted": most mass below 512 B.
    EXPECT_GT(d->cdf(512), 0.85);
    // "Cache1's encryption size is ~>= 4B".
    EXPECT_LT(d->cdf(4), 0.01);
}

TEST(Fig19, Feed1CompressesLargerThanCache1)
{
    auto feed1 = compressionSizes(ServiceId::Feed1);
    auto cache1 = compressionSizes(ServiceId::Cache1);
    EXPECT_GT(feed1->mean(), 2 * cache1->mean());
    EXPECT_GT(feed1->fractionAtLeast(425),
              cache1->fractionAtLeast(425));
}

TEST(Fig19, Feed1EngineeredQuantiles)
{
    // The published profitable fractions (see DESIGN.md): 64.2 % of
    // compressions >= 425 B (Sync), 65.1 % >= 409 B (Async), ~26.5 %
    // >= 2455 B (Sync-OS).
    auto d = compressionSizes(ServiceId::Feed1);
    EXPECT_NEAR(d->fractionAtLeast(425), 0.6416, 0.002);
    EXPECT_NEAR(d->fractionAtLeast(409), 0.6509, 0.002);
    EXPECT_NEAR(d->fractionAtLeast(2455), 0.2651, 0.004);
}

TEST(Fig21, CopiesMostlyUnderPageSize)
{
    // "most microservices frequently copy small granularities" —
    // smaller than a 4K page, mostly < 512 B.
    for (ServiceId id : characterizedServices()) {
        auto d = copySizes(id);
        EXPECT_GT(d->cdf(512), 0.55) << toString(id);
        EXPECT_GT(d->cdf(4096), 0.96) << toString(id);
    }
}

TEST(Fig22, AllocationsMostlySmall)
{
    for (ServiceId id : characterizedServices()) {
        auto d = allocationSizes(id);
        EXPECT_GT(d->cdf(512), 0.7) << toString(id);
    }
}

TEST(Rates, PublishedAnchors)
{
    EXPECT_DOUBLE_EQ(kernelRates(ServiceId::Cache1).encryptionsPerSec,
                     298951); // Table 6
    EXPECT_DOUBLE_EQ(kernelRates(ServiceId::Feed1).compressionsPerSec,
                     15008); // Table 7
    EXPECT_DOUBLE_EQ(kernelRates(ServiceId::Ads1).copiesPerSec,
                     1473681); // Table 7
    EXPECT_DOUBLE_EQ(kernelRates(ServiceId::Cache1).allocationsPerSec,
                     51695); // Table 7
    EXPECT_DOUBLE_EQ(kernelRates(ServiceId::Cache3).encryptionsPerSec,
                     101863); // Table 6
}

TEST(Rates, AllNonNegative)
{
    for (ServiceId id : allServices()) {
        KernelRates r = kernelRates(id);
        EXPECT_GE(r.encryptionsPerSec, 0);
        EXPECT_GE(r.compressionsPerSec, 0);
        EXPECT_GE(r.copiesPerSec, 0);
        EXPECT_GE(r.allocationsPerSec, 0);
    }
}

TEST(Granularities, SharedShapesAreSameObject)
{
    // Cache tiers share the caching encryption shape.
    EXPECT_EQ(encryptionSizes(ServiceId::Cache1),
              encryptionSizes(ServiceId::Cache2));
}

} // namespace
} // namespace accel::workload

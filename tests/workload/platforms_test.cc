/** @file Tests for the CPU platform models (Table 1, Figs. 8 and 10). */

#include "workload/platforms.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::workload {
namespace {

TEST(Platforms, Table1Attributes)
{
    const Platform &a = platform(CpuGen::GenA);
    EXPECT_EQ(a.microarchitecture, "Intel Haswell");
    EXPECT_EQ(a.coresPerSocket, 12u);
    EXPECT_EQ(a.l2KiB, 256u);
    EXPECT_DOUBLE_EQ(a.llcMiB, 30.0);

    const Platform &b = platform(CpuGen::GenB);
    EXPECT_EQ(b.microarchitecture, "Intel Broadwell");
    EXPECT_EQ(b.coresPerSocket, 16u);

    const Platform &c = platform(CpuGen::GenC);
    EXPECT_EQ(c.microarchitecture, "Intel Skylake");
    EXPECT_EQ(c.l2KiB, 1024u);
    EXPECT_EQ(c.smtWays, 2u);
    EXPECT_EQ(c.cacheBlockBytes, 64u);
}

TEST(Platforms, LeafIpcBelowHalfOfPeak)
{
    // Paper: every leaf category uses less than half the 4.0-wide GenC
    // execution bandwidth.
    for (LeafCategory cat : ipcReportedLeafCategories())
        EXPECT_LT(leafIpc(CpuGen::GenC, cat),
                  platform(CpuGen::GenC).theoreticalPeakIpc / 2.0);
}

TEST(Platforms, LeafIpcNonDecreasingAcrossGens)
{
    for (LeafCategory cat : allLeafCategories()) {
        EXPECT_LE(leafIpc(CpuGen::GenA, cat), leafIpc(CpuGen::GenB, cat));
        EXPECT_LE(leafIpc(CpuGen::GenB, cat), leafIpc(CpuGen::GenC, cat));
    }
}

TEST(Platforms, KernelIpcLowestAndNearlyFlat)
{
    double kern_a = leafIpc(CpuGen::GenA, LeafCategory::Kernel);
    double kern_c = leafIpc(CpuGen::GenC, LeafCategory::Kernel);
    for (LeafCategory cat : ipcReportedLeafCategories()) {
        if (cat != LeafCategory::Kernel) {
            EXPECT_GT(leafIpc(CpuGen::GenC, cat), kern_c);
        }
    }
    EXPECT_LT(kern_c / kern_a, 1.15); // scales poorly
}

TEST(Platforms, CLibrariesScaleBest)
{
    double best_ratio = 0;
    LeafCategory best = LeafCategory::Memory;
    for (LeafCategory cat : ipcReportedLeafCategories()) {
        double ratio = leafIpc(CpuGen::GenC, cat) /
                       leafIpc(CpuGen::GenA, cat);
        if (ratio > best_ratio) {
            best_ratio = ratio;
            best = cat;
        }
    }
    EXPECT_EQ(best, LeafCategory::CLibraries);
}

TEST(Platforms, IoIpcLowDrivenByKernel)
{
    // Fig. 10: I/O IPC below every other functionality, on all gens.
    for (CpuGen gen : allCpuGens()) {
        double io = functionalityIpc(gen, Functionality::SecureInsecureIO);
        for (Functionality f : ipcReportedFunctionalities()) {
            if (f != Functionality::SecureInsecureIO) {
                EXPECT_GT(functionalityIpc(gen, f), io);
            }
        }
        EXPECT_LT(io, 0.5);
    }
}

TEST(Platforms, ApplicationLogicBarelyImproves)
{
    double a = functionalityIpc(CpuGen::GenA,
                                Functionality::ApplicationLogic);
    double c = functionalityIpc(CpuGen::GenC,
                                Functionality::ApplicationLogic);
    EXPECT_LT(c / a, 1.15);
}

TEST(Platforms, UnreportedCategoryThrows)
{
    EXPECT_THROW(functionalityIpc(CpuGen::GenA, Functionality::Logging),
                 FatalError);
}

} // namespace
} // namespace accel::workload

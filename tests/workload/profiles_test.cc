/** @file Tests that service profiles encode the paper's anchors. */

#include "workload/profiles.hh"

#include <gtest/gtest.h>

namespace accel::workload {
namespace {

using F = Functionality;
using L = LeafCategory;

TEST(Profiles, AllServicesPresent)
{
    EXPECT_EQ(characterizedServices().size(), 7u);
    EXPECT_EQ(allServices().size(), 8u);
    for (ServiceId id : allServices()) {
        const ServiceProfile &p = profile(id);
        EXPECT_EQ(p.id, id);
        EXPECT_EQ(p.name, toString(id));
        EXPECT_FALSE(p.description.empty());
    }
}

TEST(Profiles, SharesSumToHundred)
{
    for (ServiceId id : allServices()) {
        const ServiceProfile &p = profile(id);
        auto sum = [](const auto &shares) {
            double total = 0;
            for (const auto &[cat, pct] : shares)
                total += pct;
            return total;
        };
        EXPECT_NEAR(sum(p.functionalityShare), 100, 0.5) << p.name;
        EXPECT_NEAR(sum(p.leafShare), 100, 0.5) << p.name;
        EXPECT_NEAR(sum(p.memoryShare), 100, 0.5) << p.name;
        EXPECT_NEAR(sum(p.copyOriginShare), 100, 0.5) << p.name;
        EXPECT_NEAR(sum(p.kernelShare), 100, 0.5) << p.name;
        EXPECT_NEAR(sum(p.syncShare), 100, 0.5) << p.name;
        EXPECT_NEAR(sum(p.clibShare), 100, 0.5) << p.name;
    }
}

TEST(Profiles, EveryCategoryKeyed)
{
    // Each share map must carry every category (possibly zero) so the
    // figure benches can iterate uniformly.
    for (ServiceId id : allServices()) {
        const ServiceProfile &p = profile(id);
        for (F f : allFunctionalities())
            EXPECT_EQ(p.functionalityShare.count(f), 1u) << p.name;
        for (L l : allLeafCategories())
            EXPECT_EQ(p.leafShare.count(l), 1u) << p.name;
    }
}

// ------------------- prose anchors (paper §1, §2) -------------------

TEST(Anchors, WebLoggingAndAppLogic)
{
    const ServiceProfile &web = profile(ServiceId::Web);
    EXPECT_DOUBLE_EQ(web.functionalityShare.at(F::ApplicationLogic), 18);
    EXPECT_DOUBLE_EQ(web.functionalityShare.at(F::Logging), 23);
}

TEST(Anchors, CachingIoShare)
{
    // "Caching microservices can spend 52% of cycles sending/receiving
    // I/O."
    EXPECT_DOUBLE_EQ(profile(ServiceId::Cache2)
                         .functionalityShare.at(F::SecureInsecureIO),
                     52);
}

TEST(Anchors, Feed1CompressionShare)
{
    // Table 7: Feed1 compression α = 0.15.
    EXPECT_DOUBLE_EQ(
        profile(ServiceId::Feed1).functionalityShare.at(F::Compression),
        15);
}

TEST(Anchors, InferenceShares)
{
    EXPECT_DOUBLE_EQ(profile(ServiceId::Ads1)
                         .functionalityShare.at(F::PredictionRanking),
                     52); // Table 6 α = 0.52
    EXPECT_DOUBLE_EQ(profile(ServiceId::Ads2)
                         .functionalityShare.at(F::PredictionRanking),
                     33); // 1.49x ideal bound
    EXPECT_DOUBLE_EQ(profile(ServiceId::Feed1)
                         .functionalityShare.at(F::PredictionRanking),
                     58); // 2.38x ideal bound
}

TEST(Anchors, Cache1SslLeafShare)
{
    // "Cache1 spends 6% of cycles in leaf encryption functions."
    EXPECT_DOUBLE_EQ(profile(ServiceId::Cache1).leafShare.at(L::Ssl), 6);
}

TEST(Anchors, WebMemoryLeafShare)
{
    // "Copying, allocating, and freeing memory can consume 37% of
    // cycles" (Web's memory net).
    EXPECT_DOUBLE_EQ(profile(ServiceId::Web).leafShare.at(L::Memory), 37);
}

TEST(Anchors, MlMathLeafBounded)
{
    // "ML microservices such as Ads2 and Feed2 spend only up to 13% of
    // cycles on mathematical operations."
    EXPECT_LE(profile(ServiceId::Ads2).leafShare.at(L::Math), 13);
    EXPECT_LE(profile(ServiceId::Feed2).leafShare.at(L::Math), 13);
}

TEST(Anchors, CachesAreKernelHeavy)
{
    for (ServiceId other : {ServiceId::Web, ServiceId::Feed1,
                            ServiceId::Feed2, ServiceId::Ads1,
                            ServiceId::Ads2}) {
        EXPECT_GT(profile(ServiceId::Cache1).leafShare.at(L::Kernel),
                  profile(other).leafShare.at(L::Kernel));
        EXPECT_GT(profile(ServiceId::Cache2).leafShare.at(L::Kernel),
                  profile(other).leafShare.at(L::Kernel));
    }
}

TEST(Anchors, CachesSpinLockHeavy)
{
    // §2.3.3: Cache implements spin locks; dominant sync leaf.
    EXPECT_GT(profile(ServiceId::Cache1).syncShare.at(SyncLeaf::SpinLock),
              40);
    EXPECT_GT(profile(ServiceId::Cache2).syncShare.at(SyncLeaf::SpinLock),
              40);
}

TEST(Anchors, CopiesDominateMemoryCycles)
{
    // Fig. 3: memory copies are the greatest consumer of memory cycles.
    for (ServiceId id : characterizedServices()) {
        const auto &mem = profile(id).memoryShare;
        double copy = mem.at(MemoryLeaf::Copy);
        for (const auto &[leaf, pct] : mem) {
            if (leaf != MemoryLeaf::Copy) {
                EXPECT_GE(copy, pct) << toString(id);
            }
        }
    }
}

TEST(Anchors, Fig1OrchestrationDominatesForMost)
{
    // Fig. 1: orchestration can significantly dominate; for Web and the
    // caches the core logic is well under half of cycles.
    for (ServiceId id : {ServiceId::Web, ServiceId::Cache1,
                         ServiceId::Cache2}) {
        EXPECT_LT(profile(id).applicationLogicPercent(), 50) <<
            toString(id);
        EXPECT_NEAR(profile(id).applicationLogicPercent() +
                        profile(id).orchestrationPercent(),
                    100, 1e-9);
    }
}

TEST(Anchors, MlOrchestrationRange)
{
    // §2.4: the ML services spend 42%-67% of cycles orchestrating
    // inference (inference itself 33%-58%).
    for (ServiceId id : {ServiceId::Feed1, ServiceId::Feed2,
                         ServiceId::Ads1, ServiceId::Ads2}) {
        double pred = profile(id).functionalityShare.at(
            F::PredictionRanking);
        EXPECT_GE(pred, 33);
        EXPECT_LE(pred, 58);
        double orch = 100 - pred -
            profile(id).functionalityShare.at(F::ApplicationLogic);
        EXPECT_GE(orch, 38);
        EXPECT_LE(orch, 67);
    }
}

TEST(Anchors, Cache3HasNoCompressionCategory)
{
    // Fig. 17's breakdown shows no compression bar for Cache3.
    EXPECT_DOUBLE_EQ(
        profile(ServiceId::Cache3).functionalityShare.at(F::Compression),
        0);
}

TEST(ReferenceRows, GoogleAndSpecPresent)
{
    const auto &rows = referenceLeafRows();
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows[0].name, "Google [Kanev'15]");
    EXPECT_DOUBLE_EQ(rows[0].memoryNetPercent, 13); // Kanev'15 anchor
    // 403.gcc: high memory share, few copies (paper §2.3.1).
    const ReferenceLeafRow *gcc = nullptr;
    for (const auto &r : rows)
        if (r.name == "403.gcc")
            gcc = &r;
    ASSERT_NE(gcc, nullptr);
    EXPECT_DOUBLE_EQ(gcc->memoryNetPercent, 31);
    EXPECT_LE(gcc->memoryShare.at(MemoryLeaf::Copy), 2);
}

TEST(ReferenceRows, SharesSumToHundred)
{
    for (const auto &row : referenceLeafRows()) {
        double leaf_total = 0, mem_total = 0;
        for (const auto &[cat, pct] : row.leafShare)
            leaf_total += pct;
        for (const auto &[cat, pct] : row.memoryShare)
            mem_total += pct;
        EXPECT_NEAR(leaf_total, 100, 0.5) << row.name;
        EXPECT_NEAR(mem_total, 100, 0.5) << row.name;
    }
}

} // namespace
} // namespace accel::workload

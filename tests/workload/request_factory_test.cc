/** @file Tests for case-study and recommendation builders. */

#include "workload/request_factory.hh"

#include <gtest/gtest.h>

#include "workload/granularities.hh"

#include "util/logging.hh"

namespace accel::workload {
namespace {

using model::Strategy;
using model::ThreadingDesign;

TEST(MakeWorkload, MatchesModelParameters)
{
    auto sizes = encryptionSizes(ServiceId::Cache1);
    auto w = makeWorkload(2.0e9, 0.165844, 298951, sizes);
    EXPECT_NO_THROW(w.validate());
    // Implied α must round-trip.
    EXPECT_NEAR(w.impliedAlpha(), 0.165844, 1e-9);
    // Total request cost = C / n.
    EXPECT_NEAR(w.nonKernelCyclesMean + w.meanKernelCycles(),
                2.0e9 / 298951, 1e-6);
}

TEST(MakeWorkload, RejectsBadInputs)
{
    auto sizes = encryptionSizes(ServiceId::Cache1);
    EXPECT_THROW(makeWorkload(0, 0.1, 10, sizes), FatalError);
    EXPECT_THROW(makeWorkload(1e9, 0.0, 10, sizes), FatalError);
    EXPECT_THROW(makeWorkload(1e9, 0.1, 0, sizes), FatalError);
    EXPECT_THROW(makeWorkload(1e9, 0.1, 10, nullptr), FatalError);
}

TEST(CaseStudies, ThreeInTable6Order)
{
    auto studies = allCaseStudies();
    ASSERT_EQ(studies.size(), 3u);
    EXPECT_NE(studies[0].name.find("AES-NI"), std::string::npos);
    EXPECT_NE(studies[1].name.find("Cache3"), std::string::npos);
    EXPECT_NE(studies[2].name.find("Ads1"), std::string::npos);
}

TEST(CaseStudies, PublishedNumbersCarried)
{
    auto studies = allCaseStudies();
    EXPECT_NEAR(studies[0].paperEstimatedSpeedup, 0.157, 1e-9);
    EXPECT_NEAR(studies[0].paperRealSpeedup, 0.14, 1e-9);
    EXPECT_NEAR(studies[1].paperEstimatedSpeedup, 0.086, 1e-9);
    EXPECT_NEAR(studies[1].paperRealSpeedup, 0.075, 1e-9);
    EXPECT_NEAR(studies[2].paperEstimatedSpeedup, 0.7239, 1e-9);
    EXPECT_NEAR(studies[2].paperRealSpeedup, 0.6869, 1e-9);
}

TEST(CaseStudies, DesignsMatchPaper)
{
    auto studies = allCaseStudies();
    EXPECT_EQ(studies[0].design, ThreadingDesign::Sync);
    EXPECT_EQ(studies[0].publishedParams.strategy, Strategy::OnChip);
    EXPECT_EQ(studies[1].design, ThreadingDesign::AsyncNoResponse);
    EXPECT_EQ(studies[1].publishedParams.strategy, Strategy::OffChip);
    EXPECT_EQ(studies[2].design, ThreadingDesign::AsyncDistinctThread);
    EXPECT_EQ(studies[2].publishedParams.strategy, Strategy::Remote);
}

TEST(CaseStudies, ExperimentsAreRunnable)
{
    for (const auto &cs : allCaseStudies()) {
        EXPECT_NO_THROW(cs.experiment.service.validate()) << cs.name;
        EXPECT_NO_THROW(cs.experiment.accelerator.validate()) << cs.name;
        EXPECT_NO_THROW(cs.experiment.workload.validate()) << cs.name;
        EXPECT_NO_THROW(cs.publishedParams.validate()) << cs.name;
    }
}

TEST(CaseStudies, WorkloadAlphaMatchesPublished)
{
    for (const auto &cs : allCaseStudies()) {
        EXPECT_NEAR(cs.experiment.workload.impliedAlpha(),
                    cs.publishedParams.alpha, 1e-6)
            << cs.name;
    }
}

TEST(Fig20, SixRecommendations)
{
    auto recs = fig20Recommendations();
    ASSERT_EQ(recs.size(), 6u);
    EXPECT_EQ(recs[0].acceleration, "On-chip");
    EXPECT_EQ(recs[1].acceleration, "Off-chip:Sync");
    EXPECT_EQ(recs[2].acceleration, "Off-chip:Sync-OS");
    EXPECT_EQ(recs[3].acceleration, "Off-chip:Async");
    EXPECT_EQ(recs[4].overhead, "Ads1: Memory copy");
    EXPECT_EQ(recs[5].overhead, "Cache1: Memory allocation");
}

TEST(Fig20, CompressionCbFromBreakEven)
{
    EXPECT_NEAR(feed1CompressionCyclesPerByte(), 5.62, 0.01);
}

TEST(Fig20, RecommendationParamsValid)
{
    for (const auto &rec : fig20Recommendations())
        EXPECT_NO_THROW(rec.params.validate()) << rec.overhead;
}

} // namespace
} // namespace accel::workload

#!/usr/bin/env python3
"""accel-analyze: AST-grade semantic invariant checker for the
Accelerometer reproduction.

Where tools/lint/accel_lint.py enforces token-level determinism
discipline, this tool checks four semantic invariants the token lint
cannot see. They are exactly the invariants the repo's reproducibility
and honest-accounting claims rest on (ROADMAP "Recent", DESIGN.md):

  dangling-capture   A lambda that captures by reference (default [&]
                     or explicit [&x]) and flows into a *deferred*
                     callback sink — sim::EventQueue::schedule*, tier
                     dispatch/hedging, or any function taking a
                     sim::InlineCallback&& / sim::InlineFunction&&
                     parameter — while referencing locals of the
                     enclosing frame. The frame returns before the
                     event runs, so those captures dangle. Frames that
                     drive the event loop themselves (call run /
                     runUntil / runFor / runNext on a queue) outlive
                     their events and are exempt; that is why tests
                     and benches may schedule [&] lambdas and then
                     eq.run() in the same function.

  rng-discipline     RNG advances that silently break ACCEL_JOBS
                     parity or seeded replay:
                       * an accel::Rng advanced inside a parallelFor
                         body when the generator is not constructed in
                         that body (a shared stream consumed in worker
                         completion order);
                       * an Rng captured *by value* into a lambda (the
                         stream forks and both copies replay the same
                         draws);
                       * advances on a static/global Rng;
                       * std::*_distribution draws in determinism-
                         scoped code (the token lint bans engines, but
                         a distribution wrapping a sanctioned engine
                         is still libstdc++-specific and unportable).
                     The approved patterns are: a function-local Rng
                     constructed from slot-mixed seeds, a class-owned
                     member stream (rng_), or an Rng& parameter whose
                     caller owns the stream.

  validate-coverage  Every *Config-style struct that declares
                     `void validate() const` must check its unsafe
                     fields: each floating-point field (NaN/inf can
                     arrive from config parsing) and each sub-config
                     field that itself has validate() must be
                     referenced in the struct's validate() body.
                     When a `<name>FromConfig` parse function exists
                     for the struct, *every* field must be reachable
                     from it — a field the parser cannot set is a
                     silent config no-op. bool/enum fields have no
                     out-of-domain values and are exempt from the
                     validate() leg.

  metrics-accounting Counters in metrics structs (*Metrics / *Stats)
                     that are incremented but never aggregated or
                     reported anywhere in src/bench/examples (the
                     number is collected and then lost), or reported
                     but never incremented (the report prints a
                     constant). Self-updates (x.f = max(x.f, v)) and
                     warmup resets do not count as reporting.

Frontends: with the libclang Python bindings importable and a
compile_commands.json (-p builddir), declarations are type-resolved by
the real clang AST and used to refine the structural analysis (drop
rng-discipline findings whose receiver is not an accel::Rng, confirm
callback-typed parameters). Without libclang the tool runs its
built-in structural frontend — a comment/string-stripped lexer with
balanced-bracket function/struct/lambda extraction — whose behaviour
is pinned by the fixture corpus in tests/tools/fixtures/analyze/.
`--frontend libclang` refuses to degrade: it exits 2 with a clear
"needs libclang" error instead of silently passing.

Suppressions reuse the repo-wide convention, on the offending line or
the line above:

    // accel-lint: allow(<rule>) -- one-line reason

Baseline: findings whose (file, rule, normalized line text)
fingerprint appears in the baseline file (default
tools/analyze/baseline.json) are reported but do not fail the run.
The checked-in baseline is empty — the tree is analyzer-clean — and
should stay that way; baselining is an escape hatch for landing the
analyzer on a dirty tree, not a suppression mechanism.

--audit-suppressions reports stale allow() comments: a suppression
naming one of this tool's rules on a line where that rule no longer
fires. (accel_lint.py has the same mode for its own rules.)

Exit status: 0 clean (only suppressed/baselined findings), 1 when any
live finding remains (or any stale suppression in audit mode), 2 on
usage or environment errors.
"""

import argparse
import hashlib
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import sarif_util  # noqa: E402

TOOL_NAME = "accel-analyze"
TOOL_VERSION = "1.0.0"

ALL_RULES = (
    "dangling-capture",
    "rng-discipline",
    "validate-coverage",
    "metrics-accounting",
)

RULE_DESCRIPTIONS = {
    "dangling-capture":
        "by-reference lambda capture escapes into a deferred callback "
        "sink while referencing locals of the enclosing frame",
    "rng-discipline":
        "RNG advance outside the approved slot-indexed patterns "
        "(shared stream in parallelFor, by-value stream fork, "
        "static stream, or std::*_distribution draw)",
    "validate-coverage":
        "config struct field missing from validate() or from its "
        "FromConfig parse path",
    "metrics-accounting":
        "metrics counter incremented but never reported, or reported "
        "but never incremented",
}

CXX_EXTENSIONS = (".cc", ".cpp", ".cxx", ".hh", ".h", ".hpp")

# Directories whose code must be free of std::<random> distribution
# draws (mirrors accel_lint.DETERMINISM_SCOPE).
DETERMINISM_SCOPE = (
    "src/sim",
    "src/faults",
    "src/microsim",
    "src/model",
    "src/stats",
    "src/workload",
    "src/kernels",
)

# Default analysis scope: the trees required to be analyzer-clean.
DEFAULT_PATHS = ("src", "bench", "examples", "tools")

# Event-queue sink methods that defer a callback past the caller's
# frame. Extended automatically with every function in the analyzed
# tree that declares a sim::InlineCallback&& / sim::InlineFunction&&
# parameter (tier dispatch, hedging, resilient offload plumbing, ...).
BUILTIN_SINKS = frozenset({
    "schedule", "scheduleIn", "scheduleAt",
    "scheduleTimer", "scheduleTimerIn", "scheduleEvent",
})

# A frame that calls one of these drives the event loop itself, so its
# locals outlive the scheduled events.
LOOP_DRIVERS = ("run", "runUntil", "runFor", "runNext")

# accel::Rng state-advancing methods (util/rng.hh).
RNG_ADVANCE_METHODS = ("next64", "next", "uniform", "below64", "below",
                      "chance", "exponential", "gaussian", "logNormal")

SUPPRESS_RE = re.compile(r"//\s*accel-lint:\s*allow\(([\w\-, ]+)\)")

CXX_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "decltype", "alignof", "noexcept", "new", "delete", "throw",
    "case", "goto", "else", "do", "static_assert", "alignas",
    "co_return", "co_await", "co_yield", "assert",
})


class Finding:
    def __init__(self, path, line, rule, message, suppressed=False,
                 baselined=False):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = suppressed
        self.baselined = baselined

    def as_dict(self):
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def render(self):
        tag = ""
        if self.suppressed:
            tag = " (suppressed)"
        elif self.baselined:
            tag = " (baselined)"
        return "%s:%d: [%s]%s %s" % (self.path, self.line, self.rule,
                                     tag, self.message)


# ---------------------------------------------------------------------
# Lexing (same semantics as accel_lint: positions are preserved)
# ---------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving line
    structure and column offsets. Collect suppressions first."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"' and (i == 0 or
                                          not (text[i - 1].isalnum() or
                                               text[i - 1] == "_")):
            j = i + 2
            while j < n and text[j] not in "(\n":
                j += 1
            delim = text[i + 2:j]
            terminator = ")" + delim + '"'
            end = text.find(terminator, j)
            end = (end + len(terminator)) if end != -1 else n
            for k in range(i, end):
                out.append("\n" if text[k] == "\n" else " ")
            i = end
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def suppressed_rules_by_line(text):
    """Line number -> set of rule names allowed on that line (an
    allow() in a comment-only line covers the next code line)."""
    lines = text.splitlines()
    allowed = {}

    def add(lineno, rules):
        allowed.setdefault(lineno, set()).update(rules)

    for lineno, line in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        add(lineno, rules)
        if line.strip().startswith("//"):
            nxt = lineno
            while nxt < len(lines) and \
                    lines[nxt].strip().startswith("//"):
                nxt += 1
            add(nxt + 1, rules)
    return allowed


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_balanced(text, start, open_ch, close_ch):
    """Offset one past the bracket closing text[start], or None."""
    assert text[start] == open_ch
    depth = 0
    i = start
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        elif open_ch == "<" and c == ";":
            return None
        i += 1
    return None


def prev_sig_char(text, pos):
    """The nearest non-whitespace character before pos, or ''."""
    i = pos - 1
    while i >= 0 and text[i] in " \t\n":
        i -= 1
    return text[i] if i >= 0 else ""


def split_top_level(text, sep=","):
    """Split on sep at bracket depth 0."""
    parts = []
    depth = 0
    cur = []
    for c in text:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


# ---------------------------------------------------------------------
# Structural scanning: functions, structs, enums, lambdas
# ---------------------------------------------------------------------

FUNC_HEAD_RE = re.compile(r"([A-Za-z_~][\w:<>~]*)\s*\(")


class Function:
    def __init__(self, name, qualname, params_text, body_start,
                 body_end, head_start):
        self.name = name
        self.qualname = qualname
        self.params_text = params_text
        self.body_start = body_start
        self.body_end = body_end
        self.head_start = head_start


def _skip_ctor_init_list(clean, pos):
    """pos is just after ':' following a ')'. Skip `name(args)` /
    `name{args}` elements separated by commas; return offset of the
    body '{' or None."""
    n = len(clean)
    i = pos
    while i < n:
        while i < n and clean[i] in " \t\n":
            i += 1
        m = re.match(r"[A-Za-z_][\w:]*", clean[i:])
        if not m:
            return None
        i += m.end()
        while i < n and clean[i] in " \t\n":
            i += 1
        if i >= n or clean[i] not in "({<":
            return None
        if clean[i] == "<":
            close = match_balanced(clean, i, "<", ">")
            if close is None:
                return None
            i = close
            while i < n and clean[i] in " \t\n":
                i += 1
            if i >= n or clean[i] not in "({":
                return None
        close = match_balanced(clean, i, clean[i],
                               ")" if clean[i] == "(" else "}")
        if close is None:
            return None
        i = close
        while i < n and clean[i] in " \t\n":
            i += 1
        if i < n and clean[i] == ",":
            i += 1
            continue
        if i < n and clean[i] == "{":
            return i
        return None
    return None


def find_functions(clean):
    """Function/method definitions with bodies (heuristic; good for
    this codebase's clang-format style). TEST(...) { } macro bodies
    count as functions, which is what the frame analysis wants."""
    funcs = []
    n = len(clean)
    for m in FUNC_HEAD_RE.finditer(clean):
        qualname = m.group(1)
        name = qualname.rsplit("::", 1)[-1]
        base = re.sub(r"<.*", "", name)
        if base in CXX_KEYWORDS or not base:
            continue
        open_paren = m.end() - 1
        close = match_balanced(clean, open_paren, "(", ")")
        if close is None:
            continue
        params_text = clean[open_paren + 1:close - 1]
        i = close
        # Skip trailing specifiers up to '{', ';', or anything else.
        body_open = None
        while i < n:
            while i < n and clean[i] in " \t\n":
                i += 1
            if i >= n:
                break
            c = clean[i]
            if c == "{":
                body_open = i
                break
            if c == ";" or c == ",":
                break
            if c == ":" and (i + 1 >= n or clean[i + 1] != ":"):
                body_open = _skip_ctor_init_list(clean, i + 1)
                break
            spec = re.match(
                r"(const|noexcept|override|final|mutable|&&|&|->)",
                clean[i:])
            if not spec:
                break
            i += spec.end()
            if spec.group(1) == "noexcept" and i < n and \
                    clean[i:].lstrip()[:1] == "(":
                j = clean.index("(", i)
                nc = match_balanced(clean, j, "(", ")")
                if nc is None:
                    break
                i = nc
            elif spec.group(1) == "->":
                tm = re.match(r"\s*[\w:<>,\s*&]+", clean[i:])
                if tm:
                    i += tm.end()
        if body_open is None:
            continue
        body_close = match_balanced(clean, body_open, "{", "}")
        if body_close is None:
            continue
        funcs.append(Function(name, qualname, params_text,
                              body_open, body_close, m.start()))
    return funcs


STRUCT_RE = re.compile(
    r"\b(struct|class)\s+([A-Za-z_]\w*)\s*(final\s*)?(:[^;{]*)?\{")
ENUM_RE = re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)")

MEMBER_SKIP_RE = re.compile(
    r"^\s*(using|typedef|static|constexpr|friend|template|enum|struct|"
    r"class|virtual|explicit|operator|public|private|protected)\b")


class StructDef:
    def __init__(self, name, kind, line, body_start, body_end):
        self.name = name
        self.kind = kind
        self.line = line
        self.body_start = body_start
        self.body_end = body_end
        self.fields = []          # (name, type_text, line)
        self.has_validate = False


def _statement_is_field(stmt):
    """A member declaration statement -> (type_text, name) or None."""
    s = stmt.strip()
    if not s or MEMBER_SKIP_RE.match(s):
        return None
    # Strip default initializers: `= expr` or `{expr}` trailer.
    s = split_top_level(s, "=")[0].strip()
    brace = s.find("{")
    if brace != -1:
        s = s[:brace].strip()
    # Remove template argument lists before checking for parens so
    # std::function<void(int)> members still count as fields.
    no_tmpl = re.sub(r"<[^<>]*>", "", s)
    while re.search(r"<[^<>]*>", no_tmpl):
        no_tmpl = re.sub(r"<[^<>]*>", "", no_tmpl)
    if "(" in no_tmpl or ")" in no_tmpl:
        return None  # member function / ctor
    m = re.match(r"^(.*[\w>:&*\s])\s*\b([A-Za-z_]\w*)\s*(\[[^\]]*\])?$",
                 s, re.S)
    if not m:
        return None
    type_text = m.group(1).strip()
    name = m.group(2)
    if not type_text or name in CXX_KEYWORDS:
        return None
    return (type_text, name)


def find_structs(clean):
    """All struct/class definitions with their public data members."""
    structs = []
    for m in STRUCT_RE.finditer(clean):
        kind, name = m.group(1), m.group(2)
        body_open = m.end() - 1
        body_close = match_balanced(clean, body_open, "{", "}")
        if body_close is None:
            continue
        sd = StructDef(name, kind, line_of(clean, m.start()),
                       body_open, body_close)
        body = clean[body_open + 1:body_close - 1]
        # Walk top-depth statements, tracking access specifiers.
        public = (kind == "struct")
        depth = 0
        stmt_start = 0
        i = 0
        bn = len(body)
        while i < bn:
            c = body[i]
            if c in "([{":
                close = match_balanced(body, i, c,
                                       {"(": ")", "[": "]",
                                        "{": "}"}[c])
                if close is None:
                    break
                # A brace group at depth 0 ends a statement (nested
                # struct, member function body, init list).
                if c == "{":
                    # The label may be followed by the start of the
                    # brace-owning declaration (`private:\n struct X`),
                    # so take the last specifier anywhere in the
                    # statement, not just one abutting the brace.
                    stmt = body[stmt_start:i]
                    ams = re.findall(
                        r"\b(public|private|protected)\s*:", stmt)
                    if ams:
                        public = (ams[-1] == "public")
                    i = close
                    # Optional trailing `;`
                    j = i
                    while j < bn and body[j] in " \t\n":
                        j += 1
                    if j < bn and body[j] == ";":
                        i = j + 1
                    stmt_start = i
                    continue
                i = close
                continue
            if c == ";":
                stmt = body[stmt_start:i]
                # Access specifiers may prefix the statement.
                for am in re.finditer(r"\b(public|private|protected)\s*:",
                                      stmt):
                    public = (am.group(1) == "public")
                    stmt = stmt[am.end():]
                if "validate" in stmt and "(" in stmt:
                    if re.search(r"\bvalidate\s*\(\s*\)\s*const", stmt):
                        sd.has_validate = True
                if public:
                    field = _statement_is_field(stmt)
                    if field:
                        abs_off = body_open + 1 + stmt_start
                        # Anchor the finding at the declarator line.
                        decl_off = abs_off + len(body[stmt_start:i]) - \
                            len(body[stmt_start:i].lstrip())
                        nm_m = re.search(
                            r"\b%s\b" % re.escape(field[1]),
                            clean[abs_off:body_open + 1 + i])
                        if nm_m:
                            decl_off = abs_off + nm_m.start()
                        sd.fields.append(
                            (field[1], field[0],
                             line_of(clean, decl_off)))
                stmt_start = i + 1
            i += 1
        structs.append(sd)
    return structs


class Lambda:
    def __init__(self, start, captures_text, params_text, body_start,
                 body_end):
        self.start = start
        self.captures_text = captures_text
        self.params_text = params_text
        self.body_start = body_start
        self.body_end = body_end

    def captures(self):
        """Parsed capture list: list of (kind, name, init_expr) where
        kind is 'ref-default', 'val-default', 'this', 'ref', 'val'."""
        out = []
        for raw in split_top_level(self.captures_text):
            c = raw.strip()
            if not c:
                continue
            if c == "&":
                out.append(("ref-default", None, None))
            elif c == "=":
                out.append(("val-default", None, None))
            elif c in ("this", "*this"):
                out.append(("this", None, None))
            else:
                init = None
                if "=" in c:
                    c, init = c.split("=", 1)
                    c = c.strip()
                    init = init.strip()
                if c.startswith("&"):
                    out.append(("ref", c[1:].strip().rstrip("."),
                                init))
                else:
                    out.append(("val", c.strip().rstrip("."), init))
        return out


def find_lambdas(clean):
    lams = []
    n = len(clean)
    i = 0
    while i < n:
        i = clean.find("[", i)
        if i == -1:
            break
        prev = prev_sig_char(clean, i)
        # Subscript / array declarator / attribute: not a lambda intro.
        if prev.isalnum() or prev in "_)]":
            i += 1
            continue
        if i + 1 < n and clean[i + 1] == "[":
            i = clean.find("]]", i)
            i = i + 2 if i != -1 else n
            continue
        close = match_balanced(clean, i, "[", "]")
        if close is None:
            i += 1
            continue
        captures_text = clean[i + 1:close - 1]
        j = close
        while j < n and clean[j] in " \t\n":
            j += 1
        params_text = ""
        if j < n and clean[j] == "(":
            pclose = match_balanced(clean, j, "(", ")")
            if pclose is None:
                i += 1
                continue
            params_text = clean[j + 1:pclose - 1]
            j = pclose
        # Skip specifiers and trailing return type up to '{'.
        body_open = None
        while j < n:
            while j < n and clean[j] in " \t\n":
                j += 1
            if j >= n:
                break
            if clean[j] == "{":
                body_open = j
                break
            spec = re.match(r"(mutable|constexpr|noexcept|->)",
                            clean[j:])
            if not spec:
                break
            j += spec.end()
            if spec.group(1) == "noexcept" and \
                    clean[j:].lstrip()[:1] == "(":
                k = clean.index("(", j)
                nc = match_balanced(clean, k, "(", ")")
                if nc is None:
                    break
                j = nc
            elif spec.group(1) == "->":
                tm = re.match(r"\s*[\w:<>,\s*&]+", clean[j:])
                if tm:
                    j += tm.end()
        if body_open is None:
            i += 1
            continue
        body_close = match_balanced(clean, body_open, "{", "}")
        if body_close is None:
            i += 1
            continue
        lams.append(Lambda(i, captures_text, params_text, body_open,
                           body_close))
        i = body_open + 1  # nested lambdas are found too
    return lams


# ---------------------------------------------------------------------
# Frame analysis helpers
# ---------------------------------------------------------------------

PARAM_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*$")
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}()]\s*|\n\s*)(?:const\s+)?"
    r"(?!return\b|else\b|delete\b|new\b|throw\b|case\b|do\b|goto\b)"
    r"[A-Za-z_][\w]*(?:\s*::\s*\w+)*(?:\s*<[^;(){}<>]*>)?"
    r"[\s*&]+([a-z_]\w*)\s*[=;({\[]")
RANGE_FOR_DECL_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,\s]*[\s*&]"
    r"([A-Za-z_]\w*)\s*:")


def param_names(params_text):
    names = set()
    for p in split_top_level(params_text):
        p = split_top_level(p, "=")[0].strip()
        if not p or p in ("void",):
            continue
        m = PARAM_NAME_RE.search(p)
        if m and m.group(1) not in CXX_KEYWORDS:
            names.add(m.group(1))
    return names


def local_decls(body_text):
    names = set()
    for m in LOCAL_DECL_RE.finditer(body_text):
        if m.group(1) not in CXX_KEYWORDS:
            names.add(m.group(1))
    for m in RANGE_FOR_DECL_RE.finditer(body_text):
        names.add(m.group(1))
    return names


def innermost_frame(pos, functions, lambdas):
    """The innermost function or lambda whose body contains pos.
    Returns (params_text, body_start, body_end) or None."""
    best = None
    best_size = None
    for f in functions:
        if f.body_start < pos < f.body_end:
            size = f.body_end - f.body_start
            if best_size is None or size < best_size:
                best, best_size = (f.params_text, f.body_start,
                                   f.body_end), size
    for lam in lambdas:
        if lam.body_start < pos < lam.body_end:
            size = lam.body_end - lam.body_start
            if best_size is None or size < best_size:
                best, best_size = (lam.params_text, lam.body_start,
                                   lam.body_end), size
    return best


def enclosing_call_names(clean, pos, limit=4):
    """Names of the call expressions enclosing pos, innermost first,
    stopping at a statement boundary."""
    names = []
    depth = 0
    i = pos - 1
    while i >= 0 and len(names) < limit:
        c = clean[i]
        if c in ")]}":
            depth += 1
        elif c in "([{":
            if depth == 0:
                if c != "(":
                    return names
                j = i - 1
                while j >= 0 and clean[j] in " \t\n":
                    j -= 1
                k = j
                while k >= 0 and (clean[k].isalnum() or
                                  clean[k] == "_"):
                    k -= 1
                ident = clean[k + 1:j + 1]
                if ident and not ident[0].isdigit() and \
                        ident not in CXX_KEYWORDS:
                    names.append(ident)
                elif not ident:
                    return names
                i = k
                continue
            depth -= 1
        elif c == ";" and depth == 0:
            return names
        i -= 1
    return names


# ---------------------------------------------------------------------
# Per-file analysis context
# ---------------------------------------------------------------------

class FileCtx:
    def __init__(self, root, path):
        self.path = path
        self.rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.allowed = suppressed_rules_by_line(self.text)
        self.clean = strip_comments_and_strings(self.text)
        self.functions = find_functions(self.clean)
        self.lambdas = find_lambdas(self.clean)
        self.structs = None  # lazy

    def get_structs(self):
        if self.structs is None:
            self.structs = find_structs(self.clean)
        return self.structs

    def is_suppressed(self, lineno, rule):
        return (rule in self.allowed.get(lineno, ()) or
                rule in self.allowed.get(lineno - 1, ()))

    def line_text(self, lineno):
        lines = self.text.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


# ---------------------------------------------------------------------
# Sink discovery
# ---------------------------------------------------------------------

CALLBACK_PARAM_RE = re.compile(
    r"\b(?:sim\s*::\s*)?(?:InlineCallback\b|InlineFunction\s*<)")


def discover_sinks(ctxs):
    """BUILTIN_SINKS plus every function in the tree that declares a
    sim::InlineCallback / sim::InlineFunction parameter."""
    sinks = set(BUILTIN_SINKS)
    for ctx in ctxs:
        for m in FUNC_HEAD_RE.finditer(ctx.clean):
            name = m.group(1).rsplit("::", 1)[-1]
            if name in CXX_KEYWORDS:
                continue
            open_paren = m.end() - 1
            close = match_balanced(ctx.clean, open_paren, "(", ")")
            if close is None:
                continue
            params = ctx.clean[open_paren + 1:close - 1]
            if CALLBACK_PARAM_RE.search(params):
                sinks.add(name)
    return sinks


# ---------------------------------------------------------------------
# Rule: dangling-capture
# ---------------------------------------------------------------------

IDENT_RE = re.compile(r"\b([A-Za-z_]\w*)\b")


def check_dangling_capture(ctx, sinks, findings):
    clean = ctx.clean
    for lam in ctx.lambdas:
        caps = lam.captures()
        ref_default = any(k == "ref-default" for k, _, _ in caps)
        explicit_refs = [(nm, init) for k, nm, init in caps
                         if k == "ref"]
        if not ref_default and not explicit_refs:
            continue
        call_names = enclosing_call_names(clean, lam.start)
        if not any(nm in sinks for nm in call_names):
            continue
        frame = innermost_frame(lam.start, ctx.functions, ctx.lambdas)
        if frame is None:
            continue
        params_text, fstart, fend = frame
        frame_body = clean[fstart:fend]
        # A frame that drives the event loop outlives its events.
        if re.search(r"[.>]\s*(%s)\s*\(" % "|".join(LOOP_DRIVERS),
                     frame_body):
            continue
        lineno = line_of(clean, lam.start)
        sup = ctx.is_suppressed(lineno, "dangling-capture")
        frame_locals = (param_names(params_text) |
                        local_decls(clean[fstart:lam.start]))
        fired = False
        for nm, init in explicit_refs:
            # An init-capture referencing only members stays valid.
            if init is not None:
                init_ids = set(IDENT_RE.findall(init))
                if not (init_ids & frame_locals):
                    continue
            findings.append(Finding(
                ctx.rel, lineno, "dangling-capture",
                "lambda captures '%s' by reference and is deferred "
                "through a callback sink (%s); the enclosing frame "
                "returns before the callback runs, so the reference "
                "dangles — capture by value or move instead"
                % (nm, next((c for c in call_names if c in sinks),
                            call_names[0] if call_names else "?")),
                suppressed=sup))
            fired = True
        if ref_default and not fired:
            body_ids = set(
                IDENT_RE.findall(clean[lam.body_start:lam.body_end]))
            leaked = sorted(body_ids & frame_locals)
            # Names re-declared inside the lambda body shadow the
            # enclosing locals and are not captures.
            inner = (local_decls(clean[lam.body_start:lam.body_end]) |
                     param_names(lam.params_text))
            leaked = [nm for nm in leaked if nm not in inner]
            if leaked:
                findings.append(Finding(
                    ctx.rel, lineno, "dangling-capture",
                    "[&]-default lambda referencing enclosing "
                    "local(s) %s is deferred through a callback sink "
                    "(%s); the frame returns before the callback "
                    "runs, so the references dangle — capture by "
                    "value or move instead"
                    % (", ".join("'%s'" % nm for nm in leaked[:4]),
                       next((c for c in call_names if c in sinks),
                            call_names[0] if call_names else "?")),
                    suppressed=sup))


# ---------------------------------------------------------------------
# Rule: rng-discipline
# ---------------------------------------------------------------------

RNG_ADVANCE_RE = re.compile(
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*(%s)\s*\("
    % "|".join(RNG_ADVANCE_METHODS))
STD_DISTRIBUTION_RE = re.compile(
    r"std\s*::\s*(\w+_distribution)\s*<")
STATIC_RNG_RE = re.compile(
    r"\bstatic\s+(?:thread_local\s+)?(?:accel\s*::\s*)?Rng\s+(\w+)")
RNG_LOCAL_RE = re.compile(r"\b(?:accel\s*::\s*)?Rng\s+(\w+)\s*[({;=]")
PARFOR_RE = re.compile(r"\bparallelFor\s*\(")


def in_determinism_scope(rel):
    return any(rel == d or rel.startswith(d + "/")
               for d in DETERMINISM_SCOPE)


def check_rng_discipline(ctx, findings):
    clean = ctx.clean
    rule = "rng-discipline"

    # (1) std::*_distribution draws in determinism-scoped code.
    if in_determinism_scope(ctx.rel):
        for m in STD_DISTRIBUTION_RE.finditer(clean):
            lineno = line_of(clean, m.start())
            findings.append(Finding(
                ctx.rel, lineno, rule,
                "std::%s output sequences are implementation-defined "
                "(libstdc++ vs libc++ differ); draw through "
                "util/rng.hh helpers instead" % m.group(1),
                suppressed=ctx.is_suppressed(lineno, rule)))

    # (2) advances on static Rng streams.
    static_rngs = {m.group(1) for m in STATIC_RNG_RE.finditer(clean)}

    # Pre-compute parallelFor lambda body spans.
    parfor_bodies = []
    for m in PARFOR_RE.finditer(clean):
        open_paren = clean.index("(", m.end() - 1)
        close = match_balanced(clean, open_paren, "(", ")")
        if close is None:
            continue
        for lam in ctx.lambdas:
            if open_paren < lam.start < close:
                parfor_bodies.append(lam)

    for m in RNG_ADVANCE_RE.finditer(clean):
        receiver = m.group(1)
        base = re.split(r"\.|->", receiver)[0]
        lineno = line_of(clean, m.start())
        sup = ctx.is_suppressed(lineno, rule)
        if base in static_rngs:
            findings.append(Finding(
                ctx.rel, lineno, rule,
                "advance on static Rng '%s': a program-lifetime "
                "stream is consumed in call order, not slot order, "
                "so results depend on event interleaving and worker "
                "count — construct a slot-seeded local Rng instead"
                % base, suppressed=sup))
            continue
        for lam in parfor_bodies:
            if not (lam.body_start < m.start() < lam.body_end):
                continue
            inner = clean[lam.body_start:lam.body_end]
            declared_inside = (
                re.search(r"\b(?:accel\s*::\s*)?Rng\s+%s\b"
                          % re.escape(base), inner) or
                re.search(r"\bauto\s+%s\s*=" % re.escape(base),
                          inner) or
                base in param_names(lam.params_text))
            if declared_inside:
                continue
            findings.append(Finding(
                ctx.rel, lineno, rule,
                "Rng '%s' advanced inside a parallelFor body but "
                "constructed outside it: the shared stream is "
                "consumed in worker completion order, breaking "
                "ACCEL_JOBS parity — construct a per-slot Rng from "
                "mixed (seed, index) inside the body" % base,
                suppressed=sup))
            break

    # (3) by-value capture of an Rng forks the stream.
    for lam in ctx.lambdas:
        frame = innermost_frame(lam.start, ctx.functions, ctx.lambdas)
        if frame is None:
            continue
        params_text, fstart, fend = frame
        before = clean[fstart:lam.start]
        rng_locals = set(RNG_LOCAL_RE.findall(before))
        # Rng& / Rng params are stream borrows, not forkable copies?
        # A by-value capture of either still copies the engine.
        for p in split_top_level(params_text):
            pm = re.search(r"\bRng\s*&?\s*([A-Za-z_]\w*)\s*$",
                           split_top_level(p, "=")[0].strip())
            if pm:
                rng_locals.add(pm.group(1))
        if not rng_locals:
            continue
        lineno = line_of(clean, lam.start)
        sup = ctx.is_suppressed(lineno, rule)
        for kind, nm, init in lam.captures():
            if kind == "val" and nm in rng_locals and init is None:
                findings.append(Finding(
                    ctx.rel, lineno, rule,
                    "Rng '%s' captured by value: the lambda's copy "
                    "replays the same draws as the original stream "
                    "(a silent stream fork) — capture by reference, "
                    "std::move the generator in, or construct a "
                    "fresh slot-seeded Rng inside" % nm,
                    suppressed=sup))
            elif kind == "val" and init is not None:
                init_ids = set(IDENT_RE.findall(init))
                if (init_ids & rng_locals) and "move" not in init_ids:
                    findings.append(Finding(
                        ctx.rel, lineno, rule,
                        "init-capture copies Rng '%s': the lambda's "
                        "copy replays the same draws as the original "
                        "stream (a silent stream fork) — move it or "
                        "construct a fresh slot-seeded Rng"
                        % sorted(init_ids & rng_locals)[0],
                        suppressed=sup))


# ---------------------------------------------------------------------
# Rules: validate-coverage and metrics-accounting (cross-file)
# ---------------------------------------------------------------------

FLOAT_TYPES = ("double", "float")


def _type_category(type_text, validatable, enums):
    t = type_text.strip()
    if re.search(r"\bbool\b", t):
        return "bool"
    for e in enums:
        if re.search(r"\b%s\b" % re.escape(e), t):
            return "enum"
    for v in validatable:
        if re.search(r"\b%s\b" % re.escape(v), t):
            return "subconfig"
    if any(re.search(r"\b%s\b" % ft, t) for ft in FLOAT_TYPES):
        return "float"
    return "other"


def collect_validate_bodies(ctxs):
    """StructName -> concatenated text of its validate() definition."""
    bodies = {}
    rx = re.compile(r"([A-Za-z_]\w*)\s*::\s*validate\s*\(\s*\)\s*const")
    for ctx in ctxs:
        for m in rx.finditer(ctx.clean):
            brace = ctx.clean.find("{", m.end())
            if brace == -1:
                continue
            close = match_balanced(ctx.clean, brace, "{", "}")
            if close is None:
                continue
            bodies.setdefault(m.group(1), "")
            bodies[m.group(1)] += ctx.clean[brace:close]
    return bodies


def collect_parse_bodies(ctxs, struct_names):
    """StructName -> concatenated bodies of its FromConfig parser(s).
    A parser is associated by return type mention in the declaration
    head (e.g. `TierConfig tierFromConfig(` or
    `std::shared_ptr<const faults::FaultPlan> faultPlanFromConfig(`)."""
    bodies = {}
    for ctx in ctxs:
        for f in ctx.functions:
            if not re.search(r"[Ff]romConfig", f.name):
                continue
            head_limit = ctx.clean.rfind("\n", 0, f.head_start)
            head_start = ctx.clean.rfind("\n", 0, max(0, head_limit))
            head = ctx.clean[max(0, head_start):f.head_start + 1]
            for s in struct_names:
                if re.search(r"\b%s\b" % re.escape(s), head):
                    bodies.setdefault(s, "")
                    bodies[s] += ctx.clean[f.body_start:f.body_end]
    return bodies


def check_validate_coverage(ctxs, findings):
    rule = "validate-coverage"
    enums = set()
    for ctx in ctxs:
        enums.update(ENUM_RE.findall(ctx.clean))

    # Validatable structs, with the defining context for anchoring.
    defs = []  # (ctx, StructDef)
    for ctx in ctxs:
        for sd in ctx.get_structs():
            if sd.has_validate:
                defs.append((ctx, sd))
    validatable = {sd.name for _, sd in defs}
    validate_bodies = collect_validate_bodies(ctxs)
    parse_bodies = collect_parse_bodies(ctxs, validatable)

    for ctx, sd in defs:
        vbody = validate_bodies.get(sd.name)
        pbody = parse_bodies.get(sd.name)
        for (fname, ftype, fline) in sd.fields:
            cat = _type_category(ftype, validatable, enums)
            sup = ctx.is_suppressed(fline, rule)
            ref_rx = re.compile(r"\b%s\b" % re.escape(fname))
            if vbody is not None and cat in ("float", "subconfig"):
                if not ref_rx.search(vbody):
                    what = ("floating-point field can carry NaN/inf "
                            "out of config parsing"
                            if cat == "float" else
                            "sub-config field has its own validate() "
                            "that is never invoked")
                    findings.append(Finding(
                        ctx.rel, fline, rule,
                        "%s.%s is never referenced in "
                        "%s::validate(): %s"
                        % (sd.name, fname, sd.name, what),
                        suppressed=sup))
            if pbody is not None:
                if not ref_rx.search(pbody):
                    findings.append(Finding(
                        ctx.rel, fline, rule,
                        "%s.%s cannot be set by the %s FromConfig "
                        "parse path: the config key is a silent "
                        "no-op for this field"
                        % (sd.name, fname, sd.name),
                        suppressed=sup))


METRICS_NAME_RE = re.compile(r"(Metrics|Stats)$")
WRITE_AFTER_RE = re.compile(
    r"^\s*(\+=|-=|\*=|/=|\+\+|--|=[^=])")
WRITE_METHOD_RE = re.compile(
    r"^\s*\.\s*(add|merge|record|push_back|emplace_back|resize|"
    r"insert|clear|assign|reserve)\s*\(")
SUBSCRIPT_WRITE_RE = re.compile(r"^\s*\[[^\]]*\]\s*(\+=|-=|=[^=])")
# ++x.f / --x.f: the operator precedes the receiver chain, not the
# field itself.
PRE_INCR_RE = re.compile(r"(\+\+|--)\s*[A-Za-z_][\w.>\[\]-]*\s*$")
# A statement that writes the field elsewhere (self-update like
# x.f = max(x.f, v), or aggregation total.f += m.f / total.f.merge(
# m.f)): its reads are not independent reports of the value.
SELF_WRITE_STMT_TMPL = (
    r"(?:\.|->)\s*%s\s*(?:(\+=|-=|\*=|/=|\+\+|--|=[^=])|"
    r"\.\s*(add|merge|record|push_back|insert|assign)\s*\()")


def _enclosing_statement(clean, pos):
    start = max(clean.rfind(";", 0, pos), clean.rfind("{", 0, pos),
                clean.rfind("}", 0, pos))
    end = clean.find(";", pos)
    if end == -1:
        end = len(clean)
    return clean[start + 1:end]


def _classify_accesses(clean, matches, tracked):
    for m in matches:
        fname = m.group(1)
        after = clean[m.end():m.end() + 200]
        before = clean[max(0, m.start() - 80):m.start()]
        is_write = bool(WRITE_AFTER_RE.match(after) or
                        WRITE_METHOD_RE.match(after) or
                        SUBSCRIPT_WRITE_RE.match(after) or
                        PRE_INCR_RE.search(before))
        if is_write:
            tracked[fname][0] += 1
        else:
            stmt = _enclosing_statement(clean, m.start())
            if re.search(SELF_WRITE_STMT_TMPL % re.escape(fname),
                         stmt):
                continue
            tracked[fname][1] += 1


def check_metrics_accounting(ctxs, scope_rels, findings):
    rule = "metrics-accounting"

    # Collect metrics structs and every known struct's field names
    # (for ambiguity detection).
    metrics = []  # (ctx, StructDef)
    all_fields = {}  # field name -> set of struct names declaring it
    for ctx in ctxs:
        for sd in ctx.get_structs():
            for (fname, _t, _l) in sd.fields:
                all_fields.setdefault(fname, set()).add(sd.name)
            if METRICS_NAME_RE.search(sd.name) and sd.kind == "struct":
                metrics.append((ctx, sd))

    metric_structs = {sd.name for _, sd in metrics}
    tracked = {}  # field -> [writes, reads]
    ambiguous = set()
    decl_lines = {}  # field -> set of (rel, line) declaration sites
    for ctx, sd in metrics:
        for (fname, ftype, fline) in sd.fields:
            owners = all_fields.get(fname, set())
            # Owned by a non-metrics struct too: member accesses can't
            # be attributed without type resolution; skip honestly.
            if owners - metric_structs:
                ambiguous.add(fname)
                continue
            tracked.setdefault(fname, [0, 0])
            decl_lines.setdefault(fname, set()).add((ctx.rel, fline))

    if not tracked:
        return

    names_alt = "|".join(re.escape(f) for f in sorted(tracked))
    access_rx = re.compile(r"(?:\.|->)\s*(%s)\b" % names_alt)
    # Unqualified accesses: only meaningful inside the metrics
    # struct's own member functions (metrics.cc-style qps()/
    # meanLatencyCycles() read fields without a receiver prefix).
    bare_rx = re.compile(r"(?<![\w.>])(%s)\b" % names_alt)

    for ctx in ctxs:
        if ctx.rel not in scope_rels:
            continue
        clean = ctx.clean
        _classify_accesses(clean, access_rx.finditer(clean), tracked)

        # Member-scope spans for bare accesses: the struct bodies of
        # metrics structs defined here, plus out-of-line
        # StructName::method definitions.
        spans = []
        for sd in ctx.get_structs():
            if sd.name in metric_structs and \
                    METRICS_NAME_RE.search(sd.name):
                spans.append((sd.body_start, sd.body_end, sd))
        for f in ctx.functions:
            qual = f.qualname.rsplit("::", 2)
            if len(qual) >= 2 and qual[-2] in metric_structs:
                spans.append((f.body_start, f.body_end, None))
        for (start, end, sd) in spans:
            seg = clean[start:end]
            hits = []
            for m in bare_rx.finditer(seg):
                fname = m.group(1)
                lineno = line_of(clean, start + m.start())
                # Skip the field's own declaration (the initializer
                # `= 0` is not an accounting write).
                if sd is not None and \
                        (ctx.rel, lineno) in decl_lines.get(fname,
                                                            ()):
                    continue
                # Arrow/dot-prefixed hits were already counted by
                # access_rx above.
                prev = prev_sig_char(seg, m.start())
                if prev == "." or (prev == ">" and
                                   seg[m.start() - 2:m.start()]
                                   == "->"):
                    continue
                hits.append(m)
            if hits:
                # Re-anchor matches to absolute offsets for
                # classification context.
                class _Shift:
                    def __init__(self, m, off):
                        self._m = m
                        self._off = off

                    def group(self, i):
                        return self._m.group(i)

                    def start(self):
                        return self._m.start() + self._off

                    def end(self):
                        return self._m.end() + self._off

                _classify_accesses(
                    clean, [_Shift(m, start) for m in hits], tracked)

    for ctx, sd in metrics:
        for (fname, ftype, fline) in sd.fields:
            if fname in ambiguous or fname not in tracked:
                continue
            writes, reads = tracked[fname]
            sup = ctx.is_suppressed(fline, rule)
            if writes and not reads:
                findings.append(Finding(
                    ctx.rel, fline, rule,
                    "%s.%s is incremented but never aggregated or "
                    "reported anywhere in src/bench/examples: the "
                    "counter is collected and then lost"
                    % (sd.name, fname), suppressed=sup))
            elif reads and not writes:
                findings.append(Finding(
                    ctx.rel, fline, rule,
                    "%s.%s is reported but never incremented: the "
                    "report shows a constant default"
                    % (sd.name, fname), suppressed=sup))
            elif not reads and not writes:
                findings.append(Finding(
                    ctx.rel, fline, rule,
                    "%s.%s is neither incremented nor reported: dead "
                    "counter" % (sd.name, fname), suppressed=sup))


# ---------------------------------------------------------------------
# Optional libclang refinement
# ---------------------------------------------------------------------

def libclang_available():
    try:
        from clang import cindex
        cindex.Index.create()
        return True
    except Exception:
        return False


def libclang_refine(findings, ctxs, compile_commands):
    """Refine rng-discipline receiver types with the real AST: drop
    advance findings whose receiver resolves to a non-Rng type. Best
    effort — any parse failure leaves the structural findings as-is."""
    try:
        from clang import cindex
        index = cindex.Index.create()
    except Exception:
        return findings

    flags_by_file = {}
    for entry in compile_commands or []:
        args = entry.get("arguments") or entry.get("command", "").split()
        keep = [a for a in args[1:]
                if a.startswith(("-std", "-I", "-isystem", "-D"))]
        flags_by_file[os.path.abspath(entry.get("file", ""))] = keep

    rng_lines_by_file = {}
    for ctx in ctxs:
        wanted = [f for f in findings
                  if f.rule == "rng-discipline" and f.path == ctx.rel]
        if not wanted:
            continue
        flags = flags_by_file.get(os.path.abspath(ctx.path), [])
        try:
            tu = index.parse(ctx.path, args=flags)
        except Exception:
            continue
        lines = set()

        def visit(node):
            try:
                if node.kind == cindex.CursorKind.CALL_EXPR and \
                        node.location.file and \
                        os.path.samefile(str(node.location.file),
                                         ctx.path):
                    for child in node.get_children():
                        t = child.type.spelling
                        if "Rng" in t:
                            lines.add(node.location.line)
                            break
            except Exception:
                pass
            for child in node.get_children():
                visit(child)

        try:
            visit(tu.cursor)
        except Exception:
            continue
        rng_lines_by_file[ctx.rel] = lines

    refined = []
    for f in findings:
        if f.rule == "rng-discipline" and f.path in rng_lines_by_file:
            # Keep distribution findings (type-independent); drop
            # advance findings on lines with no Rng-typed receiver.
            if "_distribution" not in f.message and \
                    f.line not in rng_lines_by_file[f.path]:
                continue
        refined.append(f)
    return refined


# ---------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------

def fingerprint(finding, line_text):
    norm = re.sub(r"\s+", " ", line_text.strip())
    digest = hashlib.sha1(
        ("%s|%s|%s" % (finding.path, finding.rule, norm))
        .encode("utf-8")).hexdigest()
    return digest[:16]


def load_baseline(path):
    if not path or not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    counts = {}
    for fp in data.get("fingerprints", []):
        counts[fp] = counts.get(fp, 0) + 1
    return counts


def apply_baseline(findings, ctx_by_rel, counts):
    remaining = dict(counts)
    for f in findings:
        if f.suppressed:
            continue
        ctx = ctx_by_rel.get(f.path)
        if ctx is None:
            continue
        fp = fingerprint(f, ctx.line_text(f.line))
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            f.baselined = True


def write_baseline(path, findings, ctx_by_rel):
    fps = []
    for f in findings:
        if f.suppressed:
            continue
        ctx = ctx_by_rel.get(f.path)
        if ctx is None:
            continue
        fps.append(fingerprint(f, ctx.line_text(f.line)))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({
            "version": 1,
            "tool": TOOL_NAME,
            "note": "Findings fingerprinted here are reported but do "
                    "not fail the build. Keep this empty: fix or "
                    "justify with // accel-lint: allow(rule) instead.",
            "fingerprints": sorted(fps),
        }, fh, indent=2)
        fh.write("\n")


# ---------------------------------------------------------------------
# Suppression audit (shared semantics with accel_lint)
# ---------------------------------------------------------------------

def audit_suppressions(ctxs, findings, tool_rules):
    """Stale allow() comments: a suppression naming one of this
    tool's rules where that rule produced no finding on any covered
    line. Foreign rule names (the other tool's) are ignored."""
    fired = {}  # (rel, line) -> set of rules (suppressed or not)
    for f in findings:
        fired.setdefault((f.path, f.line), set()).add(f.rule)
    stale = []
    for ctx in ctxs:
        lines = ctx.text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",")
                     if r.strip()} & set(tool_rules)
            if not rules:
                continue
            covered = {lineno, lineno + 1}
            if line.strip().startswith("//"):
                nxt = lineno
                while nxt < len(lines) and \
                        lines[nxt].strip().startswith("//"):
                    nxt += 1
                covered.add(nxt + 1)
            for rule in sorted(rules):
                if any(rule in fired.get((ctx.rel, ln), ())
                       for ln in covered):
                    continue
                stale.append(Finding(
                    ctx.rel, lineno, "stale-suppression",
                    "allow(%s) no longer matches any %s finding on "
                    "this line; remove the suppression" %
                    (rule, rule)))
    return stale


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

def collect_files(root, paths, excludes):
    files = []
    for base in paths:
        full = os.path.join(root, base)
        if os.path.isfile(full):
            files.append(full)
            continue
        if not os.path.isdir(full):
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            rel_dir = os.path.relpath(dirpath, root)
            if any(rel_dir == e or rel_dir.startswith(e + "/")
                   for e in excludes):
                dirnames[:] = []
                continue
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, fn))
    return sorted(set(files))


def main(argv):
    ap = argparse.ArgumentParser(
        prog="accel_analyze",
        description="AST-grade invariant checker: callback lifetimes, "
                    "RNG discipline, config/metrics coverage.")
    ap.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                    help="files or directories relative to --root "
                         "(default: %s)" % " ".join(DEFAULT_PATHS))
    ap.add_argument("-p", "--build-dir", default=None,
                    help="build dir containing compile_commands.json "
                         "(used by the libclang frontend)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above "
                         "this script)")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write a machine-readable report here")
    ap.add_argument("--sarif", dest="sarif_out", default=None,
                    help="write a SARIF 2.1.0 report here")
    ap.add_argument("--rules", default=",".join(ALL_RULES),
                    help="comma-separated rule subset to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "builtin", "libclang"),
                    help="auto: libclang refinement when importable, "
                         "else the built-in structural frontend; "
                         "libclang: hard error when unavailable")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: "
                         "tools/analyze/baseline.json under --root; "
                         "'none' disables)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ap.add_argument("--audit-suppressions", action="store_true",
                    help="report stale allow() comments for this "
                         "tool's rules instead of failing on findings")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0

    root = os.path.abspath(
        args.root or
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "..", ".."))
    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(ALL_RULES)
    if unknown:
        print("accel-analyze: unknown rule(s): %s" %
              ", ".join(sorted(unknown)), file=sys.stderr)
        return 2

    use_libclang = False
    if args.frontend == "libclang":
        if not libclang_available():
            print("accel-analyze: error: needs libclang: the clang "
                  "Python bindings are not importable (pip install "
                  "libclang, or apt install python3-clang). Refusing "
                  "to silently degrade; use --frontend auto or "
                  "builtin to run the structural frontend.",
                  file=sys.stderr)
            return 2
        use_libclang = True
    elif args.frontend == "auto":
        use_libclang = libclang_available()
        if not use_libclang:
            print("accel-analyze: note: libclang unavailable; using "
                  "the built-in structural frontend (fixture-pinned). "
                  "Install the clang Python bindings for type-"
                  "resolved refinement.", file=sys.stderr)

    compile_commands = None
    if args.build_dir:
        cc_path = os.path.join(args.build_dir, "compile_commands.json")
        if os.path.exists(cc_path):
            with open(cc_path, encoding="utf-8") as f:
                compile_commands = json.load(f)
        elif use_libclang:
            print("accel-analyze: warning: no compile_commands.json "
                  "in %s; libclang parses with default flags"
                  % args.build_dir, file=sys.stderr)

    excludes = ["tests/tools/fixtures"]
    requested = collect_files(root, args.paths, excludes)
    # Cross-file rules always see the full default scope so a partial
    # invocation cannot mistake "not scanned" for "never reported".
    scope_files = collect_files(root, DEFAULT_PATHS, excludes)
    all_files = sorted(set(requested) | set(scope_files))

    ctxs = [FileCtx(root, p) for p in all_files]
    ctx_by_rel = {c.rel: c for c in ctxs}
    requested_rels = {os.path.relpath(p, root) for p in requested}
    scope_rels = {os.path.relpath(p, root) for p in scope_files}

    findings = []
    if "dangling-capture" in rules:
        sinks = discover_sinks(ctxs)
        for ctx in ctxs:
            if ctx.rel in requested_rels:
                check_dangling_capture(ctx, sinks, findings)
    if "rng-discipline" in rules:
        for ctx in ctxs:
            if ctx.rel in requested_rels:
                check_rng_discipline(ctx, findings)
    if "validate-coverage" in rules:
        agg = []
        check_validate_coverage(ctxs, agg)
        findings.extend(f for f in agg if f.path in requested_rels)
    if "metrics-accounting" in rules:
        agg = []
        check_metrics_accounting(ctxs, scope_rels, agg)
        findings.extend(f for f in agg if f.path in requested_rels)

    if use_libclang:
        findings = libclang_refine(findings, ctxs, compile_commands)

    if args.audit_suppressions:
        stale = audit_suppressions(
            [c for c in ctxs if c.rel in requested_rels],
            findings, ALL_RULES)
        stale.sort(key=lambda f: (f.path, f.line))
        for f in stale:
            print(f.render())
        print("accel-analyze: suppression audit: %d file(s), "
              "%d stale suppression(s)"
              % (len(requested_rels), len(stale)))
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as f:
                json.dump({
                    "version": 1,
                    "mode": "audit-suppressions",
                    "stale": [s.as_dict() for s in stale],
                }, f, indent=2)
                f.write("\n")
        return 1 if stale else 0

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = os.path.join(root, "tools", "analyze",
                                     "baseline.json")
    if baseline_path == "none":
        baseline_path = None

    if args.update_baseline:
        if not baseline_path:
            print("accel-analyze: --update-baseline needs --baseline",
                  file=sys.stderr)
            return 2
        write_baseline(baseline_path, findings, ctx_by_rel)
        print("accel-analyze: baseline written to %s (%d entries)"
              % (baseline_path,
                 sum(1 for f in findings if not f.suppressed)))
        return 0

    counts = load_baseline(baseline_path)
    apply_baseline(findings, ctx_by_rel, counts)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    live = [f for f in findings
            if not f.suppressed and not f.baselined]

    for f in findings:
        print(f.render())
    print("accel-analyze: %d file(s) analyzed, %d finding(s), "
          "%d suppressed, %d baselined"
          % (len(requested_rels), len(live),
             sum(1 for f in findings if f.suppressed),
             sum(1 for f in findings if f.baselined)))

    if args.json_out:
        report = {
            "version": 1,
            "tool": TOOL_NAME,
            "root": root,
            "rules": sorted(rules),
            "frontend": "libclang" if use_libclang else "builtin",
            "checked_files": len(requested_rels),
            "findings": [f.as_dict() for f in findings],
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if args.sarif_out:
        sarif = sarif_util.make_sarif(
            TOOL_NAME, TOOL_VERSION, RULE_DESCRIPTIONS,
            [f.as_dict() for f in findings], base_uri=root)
        sarif_util.write_sarif(args.sarif_out, sarif)

    return 1 if live else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

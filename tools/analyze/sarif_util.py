#!/usr/bin/env python3
"""Shared SARIF 2.1.0 emission and merge/dedupe for the accel static
analysis tools (tools/lint/accel_lint.py and
tools/analyze/accel_analyze.py).

Both tools emit one SARIF run each; CI merges them into a single
code-scanning upload with `python3 sarif_util.py merge out.sarif
in1.sarif in2.sarif ...`, deduplicating overlapping findings by
(file, line, rule) — the two tools deliberately overlap on a few rules
(e.g. token-level banned-random vs AST-level rng-discipline can fire on
the same line) and one annotation per line per rule is enough.
"""

import json
import sys

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def make_sarif(tool_name, tool_version, rule_descriptions, findings,
               base_uri=None):
    """Build a SARIF log dict.

    rule_descriptions: {rule_id: one-line description}
    findings: iterable of dicts with keys file, line, rule, message and
    optionally suppressed (bool) / baselined (bool).
    """
    rules = [
        {
            "id": rid,
            "shortDescription": {"text": desc},
        }
        for rid, desc in sorted(rule_descriptions.items())
    ]
    results = []
    for f in findings:
        result = {
            "ruleId": f["rule"],
            "level": "error",
            "message": {"text": f["message"]},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f["file"],
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, int(f["line"]))},
                    }
                }
            ],
        }
        suppressions = []
        if f.get("suppressed"):
            suppressions.append({
                "kind": "inSource",
                "justification": "accel-lint: allow() comment",
            })
        if f.get("baselined"):
            suppressions.append({
                "kind": "external",
                "justification": "baseline file entry",
            })
        if suppressions:
            result["suppressions"] = suppressions
        results.append(result)

    run = {
        "tool": {
            "driver": {
                "name": tool_name,
                "version": tool_version,
                "informationUri":
                    "https://github.com/accelerometer-reproduction",
                "rules": rules,
            }
        },
        "columnKind": "utf16CodeUnits",
        "results": results,
    }
    if base_uri:
        run["originalUriBaseIds"] = {
            "SRCROOT": {"uri": "file://" + base_uri.rstrip("/") + "/"}
        }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def write_sarif(path, sarif):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(sarif, f, indent=2, sort_keys=True)
        f.write("\n")


def _result_key(result):
    loc = (result.get("locations") or [{}])[0]
    phys = loc.get("physicalLocation", {})
    uri = phys.get("artifactLocation", {}).get("uri", "")
    line = phys.get("region", {}).get("startLine", 0)
    return (uri, line, result.get("ruleId", ""))


def merge_sarif(logs):
    """Merge SARIF logs into one log, one run per tool, dropping
    results that duplicate an earlier (file, line, rule) triple —
    across tools, so overlapping lint/analyze findings annotate once."""
    seen = set()
    runs = []
    for log in logs:
        for run in log.get("runs", []):
            kept = []
            for result in run.get("results", []):
                key = _result_key(result)
                if key in seen:
                    continue
                seen.add(key)
                kept.append(result)
            merged_run = dict(run)
            merged_run["results"] = kept
            runs.append(merged_run)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": runs,
    }


def main(argv):
    if len(argv) < 3 or argv[0] != "merge":
        print("usage: sarif_util.py merge <out.sarif> <in.sarif>...",
              file=sys.stderr)
        return 2
    out_path, in_paths = argv[1], argv[2:]
    logs = []
    for path in in_paths:
        with open(path, encoding="utf-8") as f:
            logs.append(json.load(f))
    merged = merge_sarif(logs)
    write_sarif(out_path, merged)
    total = sum(len(r.get("results", [])) for r in merged["runs"])
    print("sarif_util: merged %d file(s) -> %s (%d result(s) after "
          "dedupe)" % (len(in_paths), out_path, total))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

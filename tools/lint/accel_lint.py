#!/usr/bin/env python3
"""accel-lint: project-specific determinism and hot-path lint for the
Accelerometer reproduction.

The repo's core correctness claim is determinism under concurrency:
every experiment is a pure function of its seed, and parallel fan-out
must stay bit-identical to the serial path. This linter enforces the
source-level discipline that claim rests on:

  banned-random      no rand()/srand()/std::random_device/std::mt19937
                     in simulation/model/stats code; all randomness
                     flows through util/rng.hh (seeded PCG32).
  banned-clock       no wall-clock reads (steady_clock::now, time(),
                     clock(), gettimeofday, ...) in simulation/model/
                     stats/kernel code; simulated time comes from the
                     event clock, wall time from util/wall_timer.hh.
  unordered-float-iter
                     no iteration over std::unordered_{map,set} that
                     feeds a floating-point accumulation; hash-order
                     is implementation-defined, so such reductions are
                     not reproducible across platforms or libstdc++
                     versions.
  fn-by-value        no by-value callable parameters (std::function,
                     sim::InlineFunction, sim::InlineCallback) in
                     function signatures; pass const& (borrow) or &&
                     (sink) so hot paths never pay a silent
                     type-erased copy or move.
  parfor-pushback    no push_back/emplace_back inside parallelFor
                     bodies; parallel loop bodies must write to
                     pre-sized slots indexed by loop index, which is
                     what makes results independent of worker count.
  header-standalone  every header under src/ compiles on its own
                     (IWYU-lite), so include order can never change
                     behaviour.

Any finding can be suppressed per line with a justification comment:

    // accel-lint: allow(<rule>) -- one-line reason

on the offending line or the line directly above it (for
header-standalone: anywhere in the header's first 15 lines).

Where the libclang Python bindings are importable they are used to
confirm fn-by-value candidates are real function parameters; otherwise
a token-level fallback (comment/string-stripped regex + bracket
matching) is used for everything. The fallback is deliberately
conservative and the fixture suite under tests/tools/ pins its
behaviour.

Exit status: 0 when clean, 1 when any unsuppressed finding remains,
2 on usage errors. --json writes a machine-readable report either way.
"""

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys
import tempfile

# ---------------------------------------------------------------------
# Rule table
# ---------------------------------------------------------------------

# Directories (relative to the repo root) whose code must be free of
# ambient randomness and wall-clock reads. util/ is deliberately NOT in
# scope: util/rng.{hh,cc} and util/wall_timer.{hh,cc} are the two
# sanctioned owners of those effects.
DETERMINISM_SCOPE = (
    "src/sim",
    "src/faults",
    "src/microsim",
    "src/model",
    "src/stats",
    "src/workload",
    "src/kernels",
)

ALL_RULES = (
    "banned-random",
    "banned-clock",
    "unordered-float-iter",
    "fn-by-value",
    "parfor-pushback",
    "header-standalone",
)

CXX_EXTENSIONS = (".cc", ".cpp", ".cxx", ".hh", ".h", ".hpp")

RANDOM_PATTERNS = (
    (re.compile(r"(?<![\w.>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w.>])random\s*\(\s*\)"), "random()"),
    (re.compile(r"(?<![\w.>])drand48\s*\("), "drand48()"),
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"std\s*::\s*(mt19937(_64)?|minstd_rand0?|ranlux\w+|"
                r"default_random_engine|knuth_b)\b"),
     "std <random> engine"),
)

CLOCK_PATTERNS = (
    (re.compile(r"(steady_clock|system_clock|high_resolution_clock)"
                r"\s*::\s*now\s*\("), "std::chrono clock read"),
    (re.compile(r"(?<![\w.:>])gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.:>])clock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
)

SUPPRESS_RE = re.compile(r"//\s*accel-lint:\s*allow\(([\w\-, ]+)\)")

TOOL_NAME = "accel-lint"
TOOL_VERSION = "1.1"

RULE_DESCRIPTIONS = {
    "banned-random": "ambient randomness outside util/rng.hh breaks "
                     "seed-purity",
    "banned-clock": "wall-clock reads in simulation code bypass the "
                    "event clock",
    "unordered-float-iter": "hash-order iteration feeding a float "
                            "accumulation is not reproducible",
    "fn-by-value": "by-value callable parameters pay a type-erased "
                   "copy on every call",
    "parfor-pushback": "push_back in a parallelFor body orders "
                       "results by completion, not index",
    "header-standalone": "every header under src/ must compile on "
                         "its own",
}


def _load_sarif_util():
    """The SARIF emitter is shared with tools/analyze."""
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "analyze"))
    import sarif_util
    return sarif_util


class Finding:
    def __init__(self, path, line, rule, message, suppressed=False):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = suppressed

    def as_dict(self):
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    def render(self):
        tag = " (suppressed)" if self.suppressed else ""
        return "%s:%d: [%s]%s %s" % (self.path, self.line, self.rule,
                                     tag, self.message)


# ---------------------------------------------------------------------
# Source preprocessing
# ---------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving line
    structure and column offsets so findings keep exact positions.

    Suppression comments must be collected *before* calling this.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"' and (i == 0 or
                                          not (text[i - 1].isalnum() or
                                               text[i - 1] == "_")):
            # Raw string literal: R"delim( ... )delim" — unescaped
            # quotes and backslashes inside must not desync the lexer.
            j = i + 2
            while j < n and text[j] not in "(\n":
                j += 1
            delim = text[i + 2:j]
            terminator = ")" + delim + '"'
            end = text.find(terminator, j)
            end = (end + len(terminator)) if end != -1 else n
            for k in range(i, end):
                out.append("\n" if text[k] == "\n" else " ")
            i = end
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def suppressed_rules_by_line(text):
    """Map line number -> set of rule names allowed on that line.

    An allow() on a code line covers that line. An allow() inside a
    comment block covers the first code line after the block, so a
    justification may wrap over several comment lines.
    """
    lines = text.splitlines()
    allowed = {}

    def add(lineno, rules):
        allowed.setdefault(lineno, set()).update(rules)

    for lineno, line in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        add(lineno, rules)
        if line.strip().startswith("//"):
            # Comment-only line: cover the first following code line.
            nxt = lineno
            while nxt < len(lines) and \
                    lines[nxt].strip().startswith("//"):
                nxt += 1
            add(nxt + 1, rules)
    return allowed


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_balanced(text, start, open_ch, close_ch):
    """Return the offset one past the bracket closing text[start]
    (which must be open_ch), or None when unbalanced. Handles '>>' when
    matching angle brackets by counting each '>' individually."""
    assert text[start] == open_ch
    depth = 0
    i = start
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        elif open_ch == "<" and c in "();":
            # A template argument list never crosses these at depth 1
            # outside nested parens; std::function<void(int)> keeps its
            # parens inside the <>, so only bail on ';'.
            if c == ";":
                return None
        i += 1
    return None


# ---------------------------------------------------------------------
# Individual rules (token-level)
# ---------------------------------------------------------------------

def check_patterns(path, clean, allowed, rule, patterns, findings):
    for rx, what in patterns:
        for m in rx.finditer(clean):
            lineno = line_of(clean, m.start())
            sup = (rule in allowed.get(lineno, ()) or
                   rule in allowed.get(lineno - 1, ()))
            findings.append(Finding(
                path, lineno, rule,
                "%s is nondeterministic here; use util/rng.hh" % what
                if rule == "banned-random" else
                "%s bypasses the event clock; use util/wall_timer.hh "
                "or sim::EventQueue::now()" % what,
                suppressed=sup))


RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
FLOAT_ACCUM_RE = re.compile(r"[+\-*]=|\+\+")


def unordered_decl_names(clean):
    """Names of variables declared with an unordered container type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(clean):
        close = match_balanced(clean, clean.index("<", m.end() - 1),
                               "<", ">")
        if close is None:
            continue
        rest = clean[close:close + 160]
        dm = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", rest)
        if dm and dm.group(1) not in ("const",):
            names.add(dm.group(1))
    return names


def loop_body_span(clean, paren_close):
    """Span of the statement following a for(...) header."""
    i = paren_close
    n = len(clean)
    while i < n and clean[i] in " \t\n":
        i += 1
    if i >= n:
        return (i, i)
    if clean[i] == "{":
        end = match_balanced(clean, i, "{", "}")
        return (i, end if end is not None else n)
    end = clean.find(";", i)
    return (i, end + 1 if end != -1 else n)


def check_unordered_float_iter(path, clean, allowed, findings):
    decls = unordered_decl_names(clean)
    for m in RANGE_FOR_RE.finditer(clean):
        open_paren = clean.index("(", m.end() - 1)
        close = match_balanced(clean, open_paren, "(", ")")
        if close is None:
            continue
        header = clean[open_paren + 1:close - 1]
        if ";" in header or ":" not in header:
            continue  # classic for-loop or malformed
        range_expr = header.rsplit(":", 1)[1].strip()
        base = re.match(r"[A-Za-z_]\w*", range_expr)
        over_unordered = ("unordered_" in range_expr or
                          (base and base.group(0) in decls))
        if not over_unordered:
            continue
        body_start, body_end = loop_body_span(clean, close)
        body = clean[body_start:body_end]
        if not FLOAT_ACCUM_RE.search(body):
            continue
        lineno = line_of(clean, m.start())
        rule = "unordered-float-iter"
        sup = (rule in allowed.get(lineno, ()) or
               rule in allowed.get(lineno - 1, ()))
        findings.append(Finding(
            path, lineno, rule,
            "iteration over an unordered container feeds an "
            "accumulation; hash order is implementation-defined, so "
            "the reduction is not reproducible — iterate a sorted "
            "view or use an ordered container",
            suppressed=sup))


FN_RE = re.compile(
    r"(?:std\s*::\s*function|(?:\bsim\s*::\s*)?\bInlineFunction)\s*<")
# The void() alias has no template argument list of its own.
INLINE_CB_RE = re.compile(r"(?:\bsim\s*::\s*)?\bInlineCallback\b")
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "return", "catch",
                    "sizeof", "decltype", "alignof", "noexcept"}


def enclosing_call_paren(clean, pos):
    """Offset of the nearest unmatched '(' before pos whose preceding
    token is an identifier (i.e. a signature/call paren), else None."""
    depth = 0
    i = pos - 1
    while i >= 0:
        c = clean[i]
        if c in ")]}":
            depth += 1
        elif c in "([{":
            if c == "(" and depth == 0:
                j = i - 1
                while j >= 0 and clean[j] in " \t\n":
                    j -= 1
                k = j
                while k >= 0 and (clean[k].isalnum() or clean[k] == "_"):
                    k -= 1
                ident = clean[k + 1:j + 1]
                if ident and not ident[0].isdigit() and \
                        ident not in CONTROL_KEYWORDS:
                    return i
                return None
            if depth == 0:
                return None
            depth -= 1
        elif c == ";":
            return None
        i -= 1
    return None


def fn_by_value_candidates(clean):
    """Offsets of each by-value-prone callable type mention: yields
    (start, end_of_type) for std::function<...>, InlineFunction<...>,
    and the sim::InlineCallback alias (which has no argument list)."""
    for m in FN_RE.finditer(clean):
        lt = clean.index("<", m.end() - 1)
        close = match_balanced(clean, lt, "<", ">")
        if close is not None:
            yield m.start(), close
    for m in INLINE_CB_RE.finditer(clean):
        yield m.start(), m.end()


def check_fn_by_value(path, clean, allowed, findings, ast_params=None):
    for start, close in fn_by_value_candidates(clean):
        rest = clean[close:]
        rm = re.match(r"\s*([&*]+)?\s*([A-Za-z_]\w*)?\s*([,)=])?", rest)
        if not rm or rm.group(1):
            continue  # reference/pointer: fine
        if not rm.group(2) or rm.group(3) is None:
            continue  # no declarator or not followed by , ) = — skip
        if enclosing_call_paren(clean, start) is None:
            continue  # local/member/alias declaration, not a parameter
        lineno = line_of(clean, start)
        if ast_params is not None and lineno not in ast_params:
            continue  # libclang says no ParmVarDecl on this line
        rule = "fn-by-value"
        sup = (rule in allowed.get(lineno, ()) or
               rule in allowed.get(lineno - 1, ()))
        findings.append(Finding(
            path, lineno, rule,
            "by-value callable parameter (std::function / "
            "sim::InlineFunction / sim::InlineCallback) pays a "
            "type-erased copy or move on every call; take const& "
            "(borrow) or && (sink)",
            suppressed=sup))


PARFOR_RE = re.compile(r"\bparallelFor\s*\(")
PUSHBACK_RE = re.compile(r"\.\s*(push_back|emplace_back)\s*\(")


def check_parfor_pushback(path, clean, allowed, findings):
    for m in PARFOR_RE.finditer(clean):
        open_paren = clean.index("(", m.end() - 1)
        close = match_balanced(clean, open_paren, "(", ")")
        if close is None:
            continue
        region = clean[open_paren:close]
        for pm in PUSHBACK_RE.finditer(region):
            lineno = line_of(clean, open_paren + pm.start())
            rule = "parfor-pushback"
            sup = (rule in allowed.get(lineno, ()) or
                   rule in allowed.get(lineno - 1, ()))
            findings.append(Finding(
                path, lineno, rule,
                "%s inside a parallelFor body orders results by "
                "completion, not by index; write to a pre-sized slot "
                "out[i] instead" % pm.group(1),
                suppressed=sup))


# ---------------------------------------------------------------------
# header-standalone (needs a compiler)
# ---------------------------------------------------------------------

def compiler_invocation(compile_commands):
    """(compiler, flags) for standalone header checks, derived from the
    first project entry in compile_commands.json when available."""
    compiler, flags = "c++", ["-std=c++20"]
    if compile_commands:
        for entry in compile_commands:
            args = entry.get("arguments") or entry.get("command",
                                                       "").split()
            if not args:
                continue
            compiler = args[0]
            flags = [a for a in args[1:]
                     if a.startswith(("-std", "-I", "-isystem", "-D"))]
            break
    return compiler, flags


def check_header_standalone(root, headers, compiler, flags, jobs,
                            findings):
    def compile_one(header):
        rel = os.path.relpath(header, os.path.join(root, "src"))
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cc", delete=False) as tu:
            tu.write('#include "%s"\nint accel_lint_tu_anchor;\n' % rel)
            name = tu.name
        try:
            proc = subprocess.run(
                [compiler] + flags + ["-I", os.path.join(root, "src"),
                                      "-fsyntax-only", name],
                capture_output=True, text=True)
            return header, proc.returncode, proc.stderr
        finally:
            os.unlink(name)

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as ex:
        for header, rc, err in ex.map(compile_one, headers):
            if rc == 0:
                continue
            rel = os.path.relpath(header, root)
            with open(header, encoding="utf-8", errors="replace") as f:
                head = "".join(f.readlines()[:15])
            sup_match = SUPPRESS_RE.search(head)
            sup = bool(sup_match and
                       "header-standalone" in sup_match.group(1))
            first_err = next((ln for ln in err.splitlines()
                              if "error:" in ln), err.strip()[:200])
            findings.append(Finding(
                rel, 1, "header-standalone",
                "header does not compile standalone: %s" % first_err,
                suppressed=sup))


# ---------------------------------------------------------------------
# Optional libclang refinement
# ---------------------------------------------------------------------

def libclang_param_lines(path, flags):
    """Lines containing std::function-typed function parameters, via
    libclang when importable; None when unavailable (caller falls back
    to the token-level decision)."""
    try:
        from clang import cindex
        index = cindex.Index.create()
        tu = index.parse(path, args=flags)
    except Exception:
        return None
    lines = set()

    def visit(node):
        if node.kind == cindex.CursorKind.PARM_DECL and \
                ("function<" in node.type.spelling or
                 "InlineFunction<" in node.type.spelling or
                 "InlineCallback" in node.type.spelling) and \
                "&" not in node.type.spelling and \
                node.location.file and \
                os.path.samefile(str(node.location.file), path):
            lines.add(node.location.line)
        for child in node.get_children():
            visit(child)

    try:
        visit(tu.cursor)
    except Exception:
        return None
    return lines


# ---------------------------------------------------------------------
# Suppression audit (shared semantics with accel_analyze)
# ---------------------------------------------------------------------

def audit_suppressions(root, files, findings, tool_rules):
    """Stale allow() comments: a suppression naming one of this tool's
    rules where that rule produced no finding on any covered line.
    Foreign rule names (accel_analyze's) are ignored. An allow() in a
    header's first 15 lines also covers the header-standalone finding
    pinned to line 1."""
    fired = {}  # (rel, line) -> set of rules (suppressed or not)
    for f in findings:
        fired.setdefault((f.path, f.line), set()).add(f.rule)
    stale = []
    for path in files:
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        lines = text.splitlines()
        is_header = rel.endswith((".hh", ".hpp", ".h"))
        for lineno, line in enumerate(lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",")
                     if r.strip()} & set(tool_rules)
            if not rules:
                continue
            covered = {lineno, lineno + 1}
            if line.strip().startswith("//"):
                nxt = lineno
                while nxt < len(lines) and \
                        lines[nxt].strip().startswith("//"):
                    nxt += 1
                covered.add(nxt + 1)
            for rule in sorted(rules):
                rule_covered = set(covered)
                if rule == "header-standalone" and is_header and \
                        lineno <= 15:
                    rule_covered.add(1)
                if any(rule in fired.get((rel, ln), ())
                       for ln in rule_covered):
                    continue
                stale.append(Finding(
                    rel, lineno, "stale-suppression",
                    "allow(%s) no longer matches any %s finding on "
                    "this line; remove the suppression" %
                    (rule, rule)))
    return stale


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

def in_scope(rel):
    return any(rel == d or rel.startswith(d + "/")
               for d in DETERMINISM_SCOPE)


def collect_files(root, paths, excludes):
    files = []
    for base in paths:
        full = os.path.join(root, base)
        if os.path.isfile(full):
            files.append(full)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            rel_dir = os.path.relpath(dirpath, root)
            if any(rel_dir == e or rel_dir.startswith(e + "/")
                   for e in excludes):
                dirnames[:] = []
                continue
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, fn))
    return sorted(set(files))


def lint_file(root, path, rules, use_libclang, clang_flags):
    rel = os.path.relpath(path, root)
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    allowed = suppressed_rules_by_line(text)
    clean = strip_comments_and_strings(text)
    findings = []
    if in_scope(rel):
        if "banned-random" in rules and "util/rng" not in rel:
            check_patterns(rel, clean, allowed, "banned-random",
                           RANDOM_PATTERNS, findings)
        if "banned-clock" in rules:
            check_patterns(rel, clean, allowed, "banned-clock",
                           CLOCK_PATTERNS, findings)
    if "unordered-float-iter" in rules:
        check_unordered_float_iter(rel, clean, allowed, findings)
    if "fn-by-value" in rules:
        ast_params = (libclang_param_lines(path, clang_flags)
                      if use_libclang else None)
        check_fn_by_value(rel, clean, allowed, findings, ast_params)
    if "parfor-pushback" in rules:
        check_parfor_pushback(rel, clean, allowed, findings)
    return findings


def main(argv):
    ap = argparse.ArgumentParser(
        prog="accel_lint",
        description="Determinism and hot-path lint for the "
                    "Accelerometer reproduction.")
    ap.add_argument("paths", nargs="*",
                    default=["src", "tests", "bench", "examples"],
                    help="files or directories relative to --root "
                         "(default: src tests bench examples)")
    ap.add_argument("-p", "--build-dir", default=None,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above "
                         "this script)")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write a machine-readable report here")
    ap.add_argument("--sarif", dest="sarif_out", default=None,
                    help="write a SARIF 2.1.0 report here")
    ap.add_argument("--rules", default=",".join(ALL_RULES),
                    help="comma-separated rule subset to run")
    ap.add_argument("--audit-suppressions", action="store_true",
                    help="report stale allow() comments for this "
                         "tool's rules instead of failing on findings")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--no-libclang", action="store_true",
                    help="skip the libclang refinement even when the "
                         "bindings are importable")
    ap.add_argument("-j", "--jobs", type=int,
                    default=os.cpu_count() or 1)
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0

    root = os.path.abspath(
        args.root or
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "..", ".."))
    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(ALL_RULES)
    if unknown:
        print("accel-lint: unknown rule(s): %s" %
              ", ".join(sorted(unknown)), file=sys.stderr)
        return 2

    compile_commands = None
    if args.build_dir:
        cc_path = os.path.join(args.build_dir, "compile_commands.json")
        if os.path.exists(cc_path):
            with open(cc_path, encoding="utf-8") as f:
                compile_commands = json.load(f)

    # The fixture corpus is intentionally full of violations; never
    # lint it as part of the real tree.
    excludes = ["tests/tools/fixtures"]
    files = collect_files(root, args.paths, excludes)

    compiler, flags = compiler_invocation(compile_commands)
    use_libclang = not args.no_libclang

    findings = []
    for path in files:
        findings.extend(lint_file(root, path, rules, use_libclang,
                                  flags))

    if "header-standalone" in rules:
        headers = [f for f in files
                   if f.endswith((".hh", ".hpp", ".h")) and
                   os.path.relpath(f, root).startswith("src/")]
        check_header_standalone(root, headers, compiler, flags,
                                args.jobs, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    # Dedupe overlapping findings: distinct token patterns for one rule
    # can fire on the same line (e.g. two clock reads in one statement);
    # one annotation per (file, line, rule) is enough. A suppressed
    # duplicate never shadows an unsuppressed one (sort puts renders in
    # a stable order; suppression state is per-line anyway).
    seen = set()
    deduped = []
    for f in findings:
        key = (f.path, f.line, f.rule)
        if key in seen:
            continue
        seen.add(key)
        deduped.append(f)
    findings = deduped

    if args.audit_suppressions:
        stale = audit_suppressions(root, files, findings, ALL_RULES)
        stale.sort(key=lambda f: (f.path, f.line))
        for f in stale:
            print(f.render())
        print("accel-lint: suppression audit: %d file(s), "
              "%d stale suppression(s)" % (len(files), len(stale)))
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as f:
                json.dump({
                    "version": 1,
                    "mode": "audit-suppressions",
                    "stale": [s.as_dict() for s in stale],
                }, f, indent=2)
                f.write("\n")
        return 1 if stale else 0

    active = [f for f in findings if not f.suppressed]

    for f in findings:
        print(f.render())
    print("accel-lint: %d file(s) checked, %d finding(s), "
          "%d suppressed" % (len(files), len(active),
                             len(findings) - len(active)))

    if args.json_out:
        report = {
            "version": 1,
            "root": root,
            "rules": sorted(rules),
            "checked_files": len(files),
            "findings": [f.as_dict() for f in findings],
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if args.sarif_out:
        sarif_util = _load_sarif_util()
        sarif = sarif_util.make_sarif(
            TOOL_NAME, TOOL_VERSION, RULE_DESCRIPTIONS,
            [f.as_dict() for f in findings], base_uri=root)
        sarif_util.write_sarif(args.sarif_out, sarif)

    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

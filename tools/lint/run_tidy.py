#!/usr/bin/env python3
"""Run clang-tidy over every project TU in compile_commands.json.

A thin, dependency-free replacement for run-clang-tidy: filters the
compilation database to first-party sources (src/, tests/, bench/,
examples/), fans out across cores, and exits nonzero when any TU
produces a diagnostic. The check selection lives in .clang-tidy at the
repo root; this driver adds nothing on top.
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

PROJECT_DIRS = ("src/", "tests/", "bench/", "examples/")
EXCLUDES = ("tests/tools/fixtures/",)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("-p", "--build-dir", required=True)
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy executable (default: from PATH)")
    ap.add_argument("-j", "--jobs", type=int,
                    default=os.cpu_count() or 1)
    args = ap.parse_args()

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    if not tidy:
        print("run_tidy: clang-tidy not found on PATH", file=sys.stderr)
        return 2

    cc_path = os.path.join(args.build_dir, "compile_commands.json")
    with open(cc_path, encoding="utf-8") as f:
        database = json.load(f)

    root = os.path.dirname(os.path.abspath(cc_path))
    repo = os.path.dirname(root)
    files = []
    for entry in database:
        path = os.path.normpath(
            os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(path, repo)
        if rel.startswith(PROJECT_DIRS) and \
                not rel.startswith(EXCLUDES):
            files.append(path)
    files = sorted(set(files))

    def run_one(path):
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout, proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(
            max_workers=args.jobs) as ex:
        for path, rc, out, err in ex.map(run_one, files):
            # clang-tidy exits nonzero on warnings when
            # WarningsAsErrors is set; surface the TU's output either
            # way so CI logs are readable.
            if rc != 0 or "warning:" in out or "error:" in out:
                failures += 1
                print("== %s" % os.path.relpath(path, repo))
                sys.stdout.write(out)
                sys.stderr.write(err)

    print("run_tidy: %d TU(s) checked, %d with findings"
          % (len(files), failures))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
